"""Process-local metrics: counters, gauges and histograms with deterministic export.

One registry per process (module-level :data:`METRICS`), fed by the mission
runner, the dispatch worker/queue, the fault-space probe backends and the
campaign service.  Three deliberate constraints keep it fit for this repo:

* **stdlib only, import-free of the rest of the package** — the registry is
  imported from ``repro.core`` and ``repro.dispatch`` alike, so it must sit
  below every other layer (the same rule as :mod:`repro.jsonl`).
* **deterministic export** — :meth:`MetricsRegistry.snapshot` and
  :meth:`MetricsRegistry.render_prometheus` sort metric names and label sets,
  so two snapshots of the same state are byte-identical regardless of the
  order in which series were first touched.
* **never on the determinism path** — metrics read wall-clock quantities and
  run counts but are write-only from the instrumented code's point of view:
  nothing in a mission, campaign or merge ever reads a metric back.

The Prometheus text rendering follows the exposition format version 0.0.4
(``# HELP`` / ``# TYPE`` comments, ``name{label="value"} value`` samples,
``_bucket``/``_sum``/``_count`` series for histograms) so the ``/metrics``
endpoint is scrapeable by a stock Prometheus server.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Mapping

#: Default histogram buckets (seconds): spans request latencies from fast
#: JSON endpoints to multi-second report merges, plus whole missions.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 120.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_value(value: float) -> str:
    """Prometheus sample value: integral floats render without a fraction."""
    if value != value:
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_labels(key: _LabelKey) -> str:
    """Render one sorted label key as Prometheus ``{k="v",...}`` text."""
    if not key:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(value)}"' for name, value in key)
    return "{" + inner + "}"


#: Backwards-compatible private alias (instrumented modules imported this).
_render_labels = render_labels


def render_series_lines(
    name: str, type_name: str, help_text: str,
    series: Iterable[tuple[_LabelKey, float]],
) -> list[str]:
    """Exposition lines for one counter/gauge; shared with the aggregator
    (:mod:`repro.obs.aggregate`) so merged fleet output and a live
    registry's :meth:`MetricsRegistry.render_prometheus` are byte-identical
    for identical state."""
    lines = [
        f"# HELP {name} {help_text}" if help_text else f"# HELP {name}",
        f"# TYPE {name} {type_name}",
    ]
    for key, value in series:
        lines.append(f"{name}{render_labels(key)} {format_value(value)}")
    return lines


def render_histogram_lines(
    name: str, help_text: str, buckets: tuple[float, ...],
    series: Iterable[tuple[_LabelKey, list[float]]],
) -> list[str]:
    """Exposition lines for one histogram (``_bucket``/``_sum``/``_count``).

    ``series`` pairs each label key with the internal bucket state layout
    ``[per-bound counts..., +Inf count, sum]``.
    """
    lines = [
        f"# HELP {name} {help_text}" if help_text else f"# HELP {name}",
        f"# TYPE {name} histogram",
    ]
    for key, state in series:
        for index, bound in enumerate(buckets):
            bucket_key = key + (("le", format_value(bound)),)
            lines.append(
                f"{name}_bucket{render_labels(bucket_key)} "
                f"{format_value(state[index])}"
            )
        inf_key = key + (("le", "+Inf"),)
        lines.append(f"{name}_bucket{render_labels(inf_key)} {format_value(state[-2])}")
        lines.append(f"{name}_sum{render_labels(key)} {format_value(state[-1])}")
        lines.append(f"{name}_count{render_labels(key)} {format_value(state[-2])}")
    return lines


class _Metric:
    """Base: one named metric holding label-keyed series."""

    type_name = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.Lock) -> None:
        self.name = name
        self.help = help_text
        self._lock = lock
        self._series: dict[_LabelKey, float] = {}

    # -- write side ---------------------------------------------------- #
    def _add(self, amount: float, labels: Mapping[str, str]) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def _set(self, value: float, labels: Mapping[str, str]) -> None:
        with self._lock:
            self._series[_label_key(labels)] = value

    # -- read side ----------------------------------------------------- #
    def value(self, **labels: str) -> float:
        """Current value of one series (0.0 when never touched)."""
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def samples(self) -> list[tuple[_LabelKey, float]]:
        with self._lock:
            return sorted(self._series.items())

    def clear(self) -> None:
        """Drop every series of this metric (scrape-time rebuilt gauges)."""
        with self._lock:
            self._series.clear()

    def dump(self) -> dict:
        """Full state for snapshot export (see :mod:`repro.obs.export`)."""
        return {
            "type": self.type_name,
            "help": self.help,
            "series": [[list(map(list, key)), value] for key, value in self.samples()],
        }

    def render(self) -> list[str]:
        return render_series_lines(self.name, self.type_name, self.help, self.samples())


class Counter(_Metric):
    """Monotonically increasing count (runs completed, cache hits, ...)."""

    type_name = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (amount={amount})")
        self._add(amount, labels)


class Gauge(_Metric):
    """A value that goes both ways (queue depths, lease ages, liveness)."""

    type_name = "gauge"

    def set(self, value: float, **labels: str) -> None:
        self._set(float(value), labels)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        self._add(amount, labels)

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self._add(-amount, labels)


class Histogram(_Metric):
    """Cumulative-bucket histogram (request/mission latencies)."""

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.Lock,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, lock)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError(f"histogram {name} needs at least one bucket")
        # Per label set: [bucket counts..., +Inf count, sum].
        self._hist: dict[_LabelKey, list[float]] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            state = self._hist.get(key)
            if state is None:
                state = self._hist[key] = [0.0] * (len(self.buckets) + 2)
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    state[index] += 1
            state[-2] += 1  # +Inf
            state[-1] += value

    def count(self, **labels: str) -> float:
        with self._lock:
            state = self._hist.get(_label_key(labels))
            return state[-2] if state is not None else 0.0

    def sum(self, **labels: str) -> float:
        with self._lock:
            state = self._hist.get(_label_key(labels))
            return state[-1] if state is not None else 0.0

    def samples(self) -> list[tuple[_LabelKey, float]]:  # snapshot() view
        with self._lock:
            return sorted((key, state[-2]) for key, state in self._hist.items())

    def clear(self) -> None:
        with self._lock:
            self._hist.clear()

    def dump(self) -> dict:
        with self._lock:
            items = sorted((key, list(state)) for key, state in self._hist.items())
        return {
            "type": self.type_name,
            "help": self.help,
            "buckets": list(self.buckets),
            "series": [[list(map(list, key)), state] for key, state in items],
        }

    def render(self) -> list[str]:
        with self._lock:
            items = sorted(self._hist.items())
        return render_histogram_lines(self.name, self.help, self.buckets, items)


class MetricsRegistry:
    """All of one process's metrics; safe for concurrent writers.

    Re-registering an existing name returns the existing metric (modules
    instrument themselves at import or call time without coordinating), but
    re-registering under a different metric type is a programming error and
    raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, cls: type, name: str, help_text: str, **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {cls.__name__}"
                    )
                return existing
            metric = cls(name, help_text, threading.Lock(), **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._register(Counter, name, help_text)  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._register(Gauge, name, help_text)  # type: ignore[return-value]

    def histogram(
        self, name: str, help_text: str = "", buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._register(Histogram, name, help_text, buckets=buckets)  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict[str, dict[str, float]]:
        """Deterministic ``{metric: {rendered-labels: value}}`` state dump.

        Histograms report their per-label observation counts (the ``_count``
        series); the full bucket layout only appears in the Prometheus text.
        """
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {
            name: {
                _render_labels(key) or "{}": value for key, value in metric.samples()
            }
            for name, metric in metrics
        }

    def dump(self) -> dict[str, dict]:
        """Full registry state, JSON-ready (types, help, buckets, series).

        This is the payload :mod:`repro.obs.export` snapshots to disk and
        :mod:`repro.obs.aggregate` merges across processes — unlike
        :meth:`snapshot` it carries complete histogram bucket state, so a
        merge of dumps loses nothing relative to the live registries.
        """
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {name: metric.dump() for name, metric in metrics}

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4)."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: list[str] = []
        for _, metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n" if lines else ""

    def reset(self) -> None:
        """Drop every metric (test isolation only)."""
        with self._lock:
            self._metrics.clear()


#: The process-wide registry every subsystem writes to.
METRICS = MetricsRegistry()
