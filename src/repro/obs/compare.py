"""Statistical phase-level comparison of two flight-trace directories.

``python -m repro.obs compare <baseline-dir> <current-dir>`` answers the
question a tripped throughput gate leaves open: *which mission phase*
regressed.  Per ``(system, phase)`` it collects the per-run seconds from
both trace directories — measured wall seconds by default, or the
deterministic platform-model nominal seconds with ``--metric nominal`` —
and bootstraps a confidence interval on ``mean(current) -
mean(baseline)`` with the same seeded machinery campaign analytics use
(:func:`repro.analysis.stats.bootstrap_diff_ci`), so the verdicts are
reproducible for given inputs.

The flags are direction-aware for time: a CI entirely above zero means the
phase got significantly *slower* (a regression, exit code 1); entirely
below zero means significantly faster (reported, not fatal).  A
self-comparison of a directory against itself can never flag a regression:
identical samples bootstrap to a zero-centred (or exactly-zero) interval,
and the regression test is strict (``low > 0``).

This is also the attribution engine ``repro.bench.perfgate check`` renders
automatically when a throughput floor is breached and trace directories
for both sides are supplied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.analysis.stats import (
    DEFAULT_CONFIDENCE,
    DEFAULT_RESAMPLES,
    bootstrap_diff_ci,
    metric_seed,
)
from repro.bench.tables import format_markdown_table

#: Per-run seconds sources a comparison can run over.
METRIC_CHOICES = ("wall", "nominal")


def phase_samples(
    summaries: Sequence[dict[str, Any]], metric: str = "wall"
) -> dict[tuple[str, str], list[float]]:
    """Per-``(system, phase)`` lists of per-run seconds, in summary order.

    ``wall`` reads each run's measured span seconds; ``nominal`` reads the
    platform model's deterministic detect/map/plan charges.  Callers pass
    summaries from :func:`repro.obs.report.collect_summaries`, which sorts
    them, so the sample vectors — and therefore the bootstrap draws — do
    not depend on worker interleaving.
    """
    if metric not in METRIC_CHOICES:
        raise ValueError(f"unknown metric {metric!r}; expected one of {METRIC_CHOICES}")
    samples: dict[tuple[str, str], list[float]] = {}
    for summary in summaries:
        system = str(summary.get("system", ""))
        if metric == "wall":
            for phase, span in summary.get("spans", {}).items():
                samples.setdefault((system, str(phase)), []).append(
                    float(span.get("wall_s", 0.0))
                )
        else:
            for phase, seconds in summary.get("nominal_s", {}).items():
                samples.setdefault((system, str(phase)), []).append(float(seconds))
    return samples


@dataclass(frozen=True)
class PhaseComparison:
    """One ``(system, phase)`` verdict: mean shift with a bootstrap CI."""

    system: str
    phase: str
    metric: str
    baseline_runs: int
    current_runs: int
    baseline_mean: float
    current_mean: float
    ci_low: float
    ci_high: float

    @property
    def comparable(self) -> bool:
        """Both sides produced samples (NaN CIs are never verdicts)."""
        return self.baseline_runs > 0 and self.current_runs > 0

    @property
    def regressed(self) -> bool:
        """Significantly slower: the CI on the mean shift excludes zero
        from above (time metrics: higher is worse)."""
        return self.comparable and self.ci_low > 0.0

    @property
    def improved(self) -> bool:
        """Significantly faster: the CI excludes zero from below."""
        return self.comparable and self.ci_high < 0.0

    @property
    def verdict(self) -> str:
        if not self.comparable:
            return "n/a"
        if self.regressed:
            return "REGRESSED"
        if self.improved:
            return "improved"
        return "~"


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else float("nan")


def compare_phases(
    baseline: Sequence[dict[str, Any]],
    current: Sequence[dict[str, Any]],
    *,
    metric: str = "wall",
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = 0,
) -> list[PhaseComparison]:
    """Compare two summary sets per ``(system, phase)``, sorted output.

    Every phase draws its bootstrap from its own
    :func:`~repro.analysis.stats.metric_seed`-derived stream, so adding or
    removing phases never reshuffles another phase's interval.
    """
    base = phase_samples(baseline, metric)
    curr = phase_samples(current, metric)
    comparisons: list[PhaseComparison] = []
    for system, phase in sorted(set(base) | set(curr)):
        a = base.get((system, phase), [])
        b = curr.get((system, phase), [])
        low, high = bootstrap_diff_ci(
            a, b,
            confidence=confidence,
            resamples=resamples,
            seed=metric_seed(seed, "obs-compare", metric, system, phase),
        )
        comparisons.append(
            PhaseComparison(
                system=system,
                phase=phase,
                metric=metric,
                baseline_runs=len(a),
                current_runs=len(b),
                baseline_mean=_mean(a),
                current_mean=_mean(b),
                ci_low=low,
                ci_high=high,
            )
        )
    return comparisons


def render_compare(
    comparisons: Sequence[PhaseComparison],
    *,
    metric: str = "wall",
    confidence: float = DEFAULT_CONFIDENCE,
) -> str:
    """The markdown phase-attribution report over ``comparisons``."""

    def seconds(value: float) -> str:
        return "n/a" if value != value else f"{value:.6f}"

    lines = ["# Flight-trace phase comparison", ""]
    lines.append(
        f"Per-run {'wall-clock' if metric == 'wall' else 'nominal (deterministic)'} "
        f"seconds per (system, phase); CI is a {confidence:.0%} bootstrap interval "
        f"on mean(current) - mean(baseline). Positive = slower."
    )
    lines.append("")
    rows: list[list[object]] = []
    for comparison in comparisons:
        rows.append(
            [
                comparison.system,
                comparison.phase,
                f"{comparison.baseline_runs}/{comparison.current_runs}",
                seconds(comparison.baseline_mean),
                seconds(comparison.current_mean),
                f"[{seconds(comparison.ci_low)}, {seconds(comparison.ci_high)}]",
                comparison.verdict,
            ]
        )
    lines.append(
        format_markdown_table(
            ["System", "Phase", "Runs b/c", "Baseline s", "Current s",
             "Diff CI", "Verdict"],
            rows,
        )
    )
    lines.append("")
    regressions = [c for c in comparisons if c.regressed]
    improvements = [c for c in comparisons if c.improved]
    if regressions:
        lines.append(
            f"{len(regressions)} phase(s) significantly slower: "
            + ", ".join(f"{c.system}/{c.phase}" for c in regressions)
            + "."
        )
    elif improvements:
        lines.append(
            f"No regressions; {len(improvements)} phase(s) significantly faster."
        )
    else:
        lines.append("No significant phase-level shift either way.")
    lines.append("")
    return "\n".join(lines)
