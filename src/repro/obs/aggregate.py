"""Merge per-process metric snapshots into one deterministic fleet view.

The read side of :mod:`repro.obs.export`: collect every snapshot under one
or more dispatch directories, deduplicate per process, merge by metric
type, and render Prometheus text that is **byte-stable over any snapshot
arrival order** — the property that lets the service's ``GET /metrics``
(and tests, and ``cmp``-based CI jobs) treat the merged exposition as a
deterministic function of fleet state.

Merge semantics, per metric type:

* **counters** sum across processes, per label set, with the addition
  performed in sorted-process order so float accumulation is reproducible;
* **histograms** merge element-wise — per label set, the per-bound bucket
  counts, the ``+Inf`` count and the sum each add up — so fleet quantile
  estimates are exactly what one process observing every event would have
  exported;
* **gauges** are last-writer-wins by ``(seq, process)`` flush order:
  point-in-time values (queue depths, thread liveness) must not add up,
  and the deterministic total order keeps ties stable.

Deduplication rules:

* one process appearing in several directories (a worker that drained
  multiple probe dirs) or several times in one (historical flushes) keeps
  only its highest-``seq`` snapshot;
* the caller's own *live* registry, when provided, supersedes every
  snapshot this process previously flushed — the scrape always reflects
  the serving process's current state, never a stale disk copy of it;
* unparseable or wrong-kind files are skipped: the exporter's atomic
  replace means those are either foreign files or torn temp leftovers,
  and a fleet view must not go down because one worker died mid-write.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.obs.metrics import (
    METRICS,
    MetricsRegistry,
    render_histogram_lines,
    render_series_lines,
)

from repro.obs.export import (
    METRICS_DIRNAME,
    SNAPSHOT_KIND,
    SNAPSHOT_SCHEMA_VERSION,
    process_exporter,
)

_LabelKey = tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class Snapshot:
    """One process's registry state at one flush (or the live registry)."""

    process: str
    seq: int
    metrics: dict[str, dict[str, Any]]
    live: bool = False
    path: Path | None = field(default=None, compare=False)

    @property
    def write_order(self) -> tuple[int, int, str]:
        """Total order for gauge last-writer-wins (live always newest)."""
        return (1 if self.live else 0, self.seq, self.process)


def snapshot_paths(directories: Iterable[str | Path]) -> list[Path]:
    """Every snapshot file under the given dispatch directories, sorted."""
    paths: set[Path] = set()
    for directory in directories:
        metrics_dir = Path(directory) / METRICS_DIRNAME
        if metrics_dir.is_dir():
            paths.update(metrics_dir.glob("*.json"))
    return sorted(paths)


def load_snapshot(path: Path) -> Snapshot | None:
    """Parse one snapshot file; ``None`` for torn/foreign/unversioned files."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or data.get("kind") != SNAPSHOT_KIND:
        return None
    if data.get("schema") != SNAPSHOT_SCHEMA_VERSION:
        return None
    process = data.get("process")
    metrics = data.get("metrics")
    if not isinstance(process, str) or not isinstance(metrics, dict):
        return None
    try:
        seq = int(data.get("seq", 0))
    except (TypeError, ValueError):
        return None
    return Snapshot(process=process, seq=seq, metrics=metrics, path=path)


def load_snapshots(directories: Iterable[str | Path]) -> list[Snapshot]:
    snapshots = [load_snapshot(path) for path in snapshot_paths(directories)]
    return [snapshot for snapshot in snapshots if snapshot is not None]


def dedupe_snapshots(
    snapshots: Iterable[Snapshot], *, live_process: str | None = None
) -> list[Snapshot]:
    """Highest-``seq`` snapshot per process, in sorted process order.

    Snapshots from ``live_process`` are dropped entirely — the caller is
    about to contribute that process's live registry instead.
    """
    best: dict[str, Snapshot] = {}
    for snapshot in snapshots:
        if snapshot.process == live_process:
            continue
        kept = best.get(snapshot.process)
        if kept is None or snapshot.seq > kept.seq:
            best[snapshot.process] = snapshot
    return [best[process] for process in sorted(best)]


def _label_key(raw: Any) -> _LabelKey | None:
    try:
        key = tuple((str(name), str(value)) for name, value in raw)
    except (TypeError, ValueError):
        return None
    return tuple(sorted(key))


def merge_snapshots(snapshots: Sequence[Snapshot]) -> dict[str, dict[str, Any]]:
    """Merge deduplicated snapshots into one registry-dump structure.

    The result has the shape of :meth:`MetricsRegistry.dump` and renders
    through the same line builders, so a merge over a single process is
    byte-identical to that process's own ``render_prometheus`` output.
    """
    ordered = sorted(snapshots, key=lambda snapshot: (snapshot.process, snapshot.seq))
    merged: dict[str, dict[str, Any]] = {}
    #: gauge label key -> write order of the snapshot that set its value.
    gauge_writers: dict[tuple[str, _LabelKey], tuple[int, int, str]] = {}
    for snapshot in ordered:
        for name in sorted(snapshot.metrics):
            data = snapshot.metrics[name]
            if not isinstance(data, dict):
                continue
            type_name = data.get("type")
            series = data.get("series")
            if type_name not in ("counter", "gauge", "histogram"):
                continue
            if not isinstance(series, list):
                continue
            target = merged.get(name)
            if target is None:
                target = merged[name] = {
                    "type": type_name,
                    "help": str(data.get("help", "")),
                    "series": {},
                }
                if type_name == "histogram":
                    target["buckets"] = tuple(
                        float(bound) for bound in data.get("buckets", ())
                    )
            elif target["type"] != type_name:
                continue  # conflicting registration; first process wins
            values: dict[_LabelKey, Any] = target["series"]
            for entry in series:
                if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                    continue
                key = _label_key(entry[0])
                if key is None:
                    continue
                if type_name == "counter":
                    values[key] = values.get(key, 0.0) + float(entry[1])
                elif type_name == "gauge":
                    writer = gauge_writers.get((name, key))
                    if writer is None or snapshot.write_order > writer:
                        values[key] = float(entry[1])
                        gauge_writers[(name, key)] = snapshot.write_order
                else:  # histogram: element-wise bucket/count/sum addition
                    state = entry[1]
                    expected = len(target["buckets"]) + 2
                    if not isinstance(state, list) or len(state) != expected:
                        continue
                    current = values.get(key)
                    if current is None:
                        values[key] = [float(value) for value in state]
                    else:
                        for index, value in enumerate(state):
                            current[index] += float(value)
    return merged


def render_merged(merged: dict[str, dict[str, Any]]) -> str:
    """Merged state as Prometheus text 0.0.4 (sorted, hence byte-stable)."""
    lines: list[str] = []
    for name in sorted(merged):
        data = merged[name]
        series = sorted(data["series"].items())
        if data["type"] == "histogram":
            lines.extend(
                render_histogram_lines(name, data["help"], data["buckets"], series)
            )
        else:
            lines.extend(
                render_series_lines(name, data["type"], data["help"], series)
            )
    return "\n".join(lines) + "\n" if lines else ""


def fleet_render(
    directories: Iterable[str | Path],
    *,
    registry: MetricsRegistry | None = METRICS,
) -> str:
    """One Prometheus exposition over this process plus the on-disk fleet.

    ``directories`` are dispatch directories whose ``obs/metrics/``
    snapshots should join the view; ``registry`` (default: the process
    registry) contributes this process's live state, superseding any
    snapshots it flushed earlier.  With no snapshot directories this
    degenerates to exactly ``registry.render_prometheus()``.
    """
    live_process = process_exporter().process if registry is not None else None
    snapshots = dedupe_snapshots(
        load_snapshots(directories), live_process=live_process
    )
    if registry is not None:
        snapshots = snapshots + [
            Snapshot(process=live_process, seq=0, metrics=registry.dump(), live=True)
        ]
    return render_merged(merge_snapshots(snapshots))
