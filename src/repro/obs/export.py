"""Per-process metric snapshots: crash-safe JSON export for fleet merging.

A campaign fleet is many processes — the service's pool threads, local
``Campaign.dispatch`` workers, external ``python -m repro.dispatch work``
processes on other machines, probe-backend drains — each with its own
process-local :data:`repro.obs.metrics.METRICS` registry.  This module is
the write side of the fleet view: every process periodically *flushes* its
full registry state (:meth:`MetricsRegistry.dump`) as one JSON snapshot
under the dispatch directory it is working::

    <dispatch-dir>/obs/metrics/<pid>-<nonce>.json

Three properties make the snapshots safe to merge (see
:mod:`repro.obs.aggregate`):

* **atomic** — each flush writes a temp file (suffix ``.tmp``, invisible to
  the aggregator's ``*.json`` glob) and ``os.replace``-s it over the
  snapshot, so a reader never observes a torn snapshot and a worker killed
  mid-flush leaves at worst a stale complete one plus an orphan temp file.
* **stable identity** — a process always writes the *same* filename (its
  pid plus a per-process random nonce) and stamps every snapshot with a
  monotonically increasing ``seq``, so the aggregator can deduplicate one
  process flushing into several directories (a worker draining probe dirs)
  by keeping its highest sequence only.
* **fork-aware** — the identity is keyed on ``os.getpid()`` and lazily
  regenerated, so ``multiprocessing`` children that inherited this module's
  state get their own identity (and a reset sequence) on first flush
  instead of colliding with — and being deduplicated against — the parent.

Flushing is best-effort by construction: like tracing, metrics are a side
channel, so an unwritable directory degrades observability but never a
campaign (``flush_metrics`` returns ``None`` instead of raising).
"""

from __future__ import annotations

import json
import os
import socket
import threading
import uuid
from pathlib import Path
from typing import Any

from repro.obs.metrics import METRICS, MetricsRegistry

SNAPSHOT_KIND = "metrics-snapshot"
SNAPSHOT_SCHEMA_VERSION = 1

#: Where snapshots live, relative to the dispatch directory being worked.
METRICS_DIRNAME = os.path.join("obs", "metrics")


class MetricsExporter:
    """One process identity writing sequence-stamped snapshots.

    The module-level :func:`flush_metrics` uses a shared per-process
    exporter; tests (and anything simulating a fleet inside one process)
    build their own with explicit ``process``/``nonce`` identities.
    """

    def __init__(self, process: str | None = None, nonce: str | None = None) -> None:
        self.nonce = nonce if nonce is not None else uuid.uuid4().hex[:8]
        host = socket.gethostname()
        self.process = (
            process
            if process is not None
            else f"{host}-{os.getpid()}-{self.nonce}"
        )
        self._seq = 0
        self._lock = threading.Lock()

    def filename(self) -> str:
        return f"{os.getpid()}-{self.nonce}.json"

    def payload(self, registry: MetricsRegistry) -> dict[str, Any]:
        """The next snapshot payload (advances the flush sequence)."""
        with self._lock:
            self._seq += 1
            seq = self._seq
        return {
            "kind": SNAPSHOT_KIND,
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "process": self.process,
            "seq": seq,
            "metrics": registry.dump(),
        }

    def flush(
        self, directory: str | Path, *, registry: MetricsRegistry | None = None
    ) -> Path | None:
        """Atomically (re)write this process's snapshot under ``directory``.

        ``directory`` is a dispatch directory; the snapshot lands under its
        ``obs/metrics/`` subtree.  Returns the snapshot path, or ``None``
        when the filesystem refused (flushing never breaks a run loop).
        """
        target_dir = Path(directory) / METRICS_DIRNAME
        payload = self.payload(registry if registry is not None else METRICS)
        path = target_dir / self.filename()
        # Unique temp per flush: pool threads share one exporter, and two
        # concurrent flushes must never interleave writes into one temp
        # file.  Racing replaces leave a complete (if momentarily stale)
        # snapshot either way.
        tmp = path.with_name(f".{path.stem}-{uuid.uuid4().hex[:6]}.tmp")
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            tmp.write_text(
                json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
            )
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return None
        return path


_exporter: MetricsExporter | None = None
_exporter_pid: int | None = None
_exporter_lock = threading.Lock()


def process_exporter() -> MetricsExporter:
    """This process's shared exporter (regenerated after a fork)."""
    global _exporter, _exporter_pid
    pid = os.getpid()
    with _exporter_lock:
        if _exporter is None or _exporter_pid != pid:
            _exporter = MetricsExporter()
            _exporter_pid = pid
        return _exporter


def flush_metrics(
    directory: str | Path, *, registry: MetricsRegistry | None = None
) -> Path | None:
    """Flush this process's registry snapshot under a dispatch directory."""
    return process_exporter().flush(directory, registry=registry)
