"""``python -m repro.obs`` — the observability CLI (see ``report.py``)."""

from repro.obs.report import main

if __name__ == "__main__":
    raise SystemExit(main())
