"""Aggregate flight-trace files into a per-phase time-breakdown report.

``python -m repro.obs report <dir>`` walks a directory for
``*.trace.jsonl`` files (a campaign's ``--trace`` dir, or a whole dispatch
tree), aggregates every run summary and renders a markdown report through
:mod:`repro.bench.tables`.

The default report is **deterministic**: it shows span counts, fast-path
skip counters and the platform model's *nominal* module seconds — all pure
functions of the campaign definition — so the same campaign produces the
same bytes on any machine, in any execution mode, and the report can be
committed as a CI baseline (``baselines/obs-smoke/phase-report.md``).
``--wall`` adds the measured wall-clock columns for local profiling; those
are machine-dependent by nature and are never part of the baseline.

Aggregation is order-independent by construction: summaries are sorted by
``(system, scenario_id, repetition)`` before any float is summed, so the
append interleavings of parallel or dispatched workers cannot change a bit
of the output.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Sequence

from repro.bench.tables import format_markdown_table, format_percent
from repro.obs.trace import PHASES, iter_trace_summaries


def trace_files(directory: str | Path) -> list[Path]:
    """Every ``*.trace.jsonl`` under ``directory``, sorted.

    Distinguishing "no trace files at all" (a wrong path — usage error)
    from "files exist but hold only headers" (a campaign that wrote no
    summaries — an empty result) is what lets the CLI exit 2 for the
    former and 1 for the latter.
    """
    directory = Path(directory)
    if not directory.exists():
        raise FileNotFoundError(f"no such trace directory: {directory}")
    return sorted(directory.rglob("*.trace.jsonl"))


def collect_summaries(directory: str | Path) -> list[dict[str, Any]]:
    """Every run summary under ``directory``, in deterministic order."""
    summaries: list[dict[str, Any]] = []
    for path in trace_files(directory):
        summaries.extend(iter_trace_summaries(path))
    summaries.sort(
        key=lambda s: (
            str(s.get("system", "")),
            str(s.get("scenario_id", "")),
            int(s.get("repetition", 0)),
        )
    )
    return summaries


def _aggregate(summaries: Sequence[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    """Per-system aggregates: span counts/walls, nominal seconds, counters."""
    systems: dict[str, dict[str, Any]] = {}
    for summary in summaries:
        system = str(summary.get("system", ""))
        agg = systems.setdefault(
            system,
            {"runs": 0, "spans": {}, "wall": {}, "nominal": {}, "counters": {}},
        )
        agg["runs"] += 1
        for phase, span in summary.get("spans", {}).items():
            agg["spans"][phase] = agg["spans"].get(phase, 0) + int(span.get("count", 0))
            agg["wall"][phase] = agg["wall"].get(phase, 0.0) + float(
                span.get("wall_s", 0.0)
            )
        for phase, seconds in summary.get("nominal_s", {}).items():
            agg["nominal"][phase] = agg["nominal"].get(phase, 0.0) + float(seconds)
        for name, value in summary.get("counters", {}).items():
            agg["counters"][name] = agg["counters"].get(name, 0) + int(value)
    return systems


def _phase_order(agg: dict[str, Any]) -> list[str]:
    known = [
        phase
        for phase in PHASES
        if phase in agg["spans"] or agg["nominal"].get(phase, 0.0) > 0.0
    ]
    extra = sorted(set(agg["spans"]) - set(known))
    return known + extra


def _seconds(value: float) -> str:
    return f"{value:.6f}"


def _skip_rate(counters: dict[str, int], skipped: str, executed: str) -> float:
    """Skips over skip opportunities (``frames-lost``/``clouds-lost`` count
    captures the harness later dropped, so they are already in ``executed``)."""
    total = counters.get(skipped, 0) + counters.get(executed, 0)
    return counters.get(skipped, 0) / total if total else float("nan")


def render_phase_report(
    summaries: Sequence[dict[str, Any]], *, wall: bool = False
) -> str:
    """The markdown phase-breakdown report over ``summaries``."""
    systems = _aggregate(summaries)
    lines = ["# Flight-trace phase report", ""]
    lines.append(
        f"{len(summaries)} traced run(s) across {len(systems)} system(s)."
    )
    lines.append(
        "Nominal seconds are the execution-platform model's deterministic "
        "module costs; span counts are deterministic too."
        + (" Wall seconds are measured on this machine." if wall else "")
    )
    lines.append("")

    headers = ["System", "Phase", "Spans", "Nominal s", "Nominal share"]
    if wall:
        headers += ["Wall s", "Wall share"]
    rows: list[list[object]] = []
    for system in sorted(systems):
        agg = systems[system]
        nominal_total = sum(agg["nominal"].values())
        wall_total = sum(agg["wall"].values())
        for phase in _phase_order(agg):
            nominal = agg["nominal"].get(phase)
            row: list[object] = [
                system,
                phase,
                agg["spans"].get(phase, 0),
                _seconds(nominal) if nominal is not None else "-",
                format_percent(nominal / nominal_total)
                if nominal is not None and nominal_total
                else "-",
            ]
            if wall:
                seconds = agg["wall"].get(phase, 0.0)
                row += [
                    _seconds(seconds),
                    format_percent(seconds / wall_total) if wall_total else "-",
                ]
            rows.append(row)
    lines.append(format_markdown_table(headers, rows))
    lines.append("")

    lines.append("## Fast-path and fault counters")
    lines.append("")
    counter_rows: list[list[object]] = []
    for system in sorted(systems):
        counters = systems[system]["counters"]
        for name in sorted(counters):
            counter_rows.append([system, name, counters[name]])
        counter_rows.append(
            [system, "frame-skip-rate",
             format_percent(_skip_rate(counters, "frames-skipped", "frames-rendered"))]
        )
        counter_rows.append(
            [system, "depth-skip-rate",
             format_percent(_skip_rate(counters, "depth-skipped", "depth-captures"))]
        )
    lines.append(format_markdown_table(["System", "Counter", "Total"], counter_rows))
    lines.append("")
    return "\n".join(lines)


def render_shard_report(
    summaries: Sequence[dict[str, Any]], *, wall: bool = False
) -> str:
    """Per-shard breakdown keyed on trace correlation IDs.

    Dispatch workers stamp every summary with ``corr.job`` (plan
    fingerprint prefix) and ``corr.shard``; traces written outside a
    dispatch tree carry no correlation and group under ``-``.
    """
    groups: dict[tuple[str, str, str], dict[str, Any]] = {}
    for summary in summaries:
        corr = summary.get("corr") or {}
        key = (
            str(corr.get("shard", "-")),
            str(corr.get("job", "-")),
            str(summary.get("system", "")),
        )
        agg = groups.setdefault(key, {"runs": 0, "nominal": 0.0, "wall": 0.0})
        agg["runs"] += 1
        agg["nominal"] += sum(
            float(seconds) for seconds in summary.get("nominal_s", {}).values()
        )
        agg["wall"] += sum(
            float(span.get("wall_s", 0.0))
            for span in summary.get("spans", {}).values()
        )

    correlated = sum(1 for key in groups if key[0] != "-")
    lines = ["# Flight-trace shard report", ""]
    lines.append(
        f"{len(summaries)} traced run(s) across {len(groups)} "
        f"(shard, job, system) group(s); {correlated} group(s) carry "
        "dispatch correlation IDs."
    )
    lines.append("")
    headers = ["Shard", "Job", "System", "Runs", "Nominal s"]
    if wall:
        headers.append("Wall s")
    rows: list[list[object]] = []
    for shard, job, system in sorted(groups):
        agg = groups[(shard, job, system)]
        row: list[object] = [shard, job, system, agg["runs"], _seconds(agg["nominal"])]
        if wall:
            row.append(_seconds(agg["wall"]))
        rows.append(row)
    lines.append(format_markdown_table(headers, rows))
    lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Aggregate flight-trace files into phase-breakdown reports.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="render the per-phase time-breakdown markdown report"
    )
    report.add_argument("dir", help="directory holding *.trace.jsonl files")
    report.add_argument("--out", default=None, help="write the report here")
    report.add_argument(
        "--wall", action="store_true",
        help="include measured wall-clock columns (machine-dependent; the "
        "default report is deterministic and baseline-safe)",
    )
    report.add_argument(
        "--by-shard", action="store_true",
        help="group by dispatch correlation IDs (shard/job) instead of phase",
    )

    compare = sub.add_parser(
        "compare",
        help="statistically compare two trace directories per (system, phase); "
        "exits 1 when a phase regressed significantly",
    )
    compare.add_argument("baseline", help="baseline trace directory")
    compare.add_argument("current", help="current trace directory")
    compare.add_argument(
        "--metric", choices=("wall", "nominal"), default="wall",
        help="per-run seconds to compare (default: %(default)s)",
    )
    compare.add_argument(
        "--confidence", type=float, default=None,
        help="bootstrap CI confidence level (default: the analysis default)",
    )
    compare.add_argument(
        "--resamples", type=int, default=None,
        help="bootstrap resample count (default: the analysis default)",
    )
    compare.add_argument(
        "--seed", type=int, default=0,
        help="base seed for the deterministic bootstrap (default: %(default)s)",
    )
    compare.add_argument("--out", default=None, help="write the comparison here")
    return parser


def _write_or_print(rendered: str, out: str | None, label: str) -> None:
    if out:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered, encoding="utf-8")
        print(f"{label} written to {path}")
    else:
        print(rendered, end="")


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        files = trace_files(args.dir)
        if not files:
            print(f"error: no *.trace.jsonl files under {args.dir}", file=sys.stderr)
            return 2
        summaries = collect_summaries(args.dir)
        if not summaries:
            # Header-only traces: the files are real but no run completed.
            print(f"no trace summaries under {args.dir}", file=sys.stderr)
            return 1
        if args.by_shard:
            rendered = render_shard_report(summaries, wall=args.wall)
        else:
            rendered = render_phase_report(summaries, wall=args.wall)
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    _write_or_print(rendered, args.out, "phase report")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.stats import DEFAULT_CONFIDENCE, DEFAULT_RESAMPLES
    from repro.obs.compare import compare_phases, render_compare

    confidence = args.confidence if args.confidence is not None else DEFAULT_CONFIDENCE
    resamples = args.resamples if args.resamples is not None else DEFAULT_RESAMPLES
    try:
        sides = {}
        for label, directory in (("baseline", args.baseline), ("current", args.current)):
            summaries = collect_summaries(directory)
            if not summaries:
                print(f"error: no trace summaries under {directory}", file=sys.stderr)
                return 2
            sides[label] = summaries
        comparisons = compare_phases(
            sides["baseline"], sides["current"],
            metric=args.metric, confidence=confidence,
            resamples=resamples, seed=args.seed,
        )
        rendered = render_compare(
            comparisons, metric=args.metric, confidence=confidence
        )
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    _write_or_print(rendered, args.out, "phase comparison")
    return 1 if any(c.regressed for c in comparisons) else 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "compare":
        return _cmd_compare(args)
    return _cmd_report(args)
