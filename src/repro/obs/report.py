"""Aggregate flight-trace files into a per-phase time-breakdown report.

``python -m repro.obs report <dir>`` walks a directory for
``*.trace.jsonl`` files (a campaign's ``--trace`` dir, or a whole dispatch
tree), aggregates every run summary and renders a markdown report through
:mod:`repro.bench.tables`.

The default report is **deterministic**: it shows span counts, fast-path
skip counters and the platform model's *nominal* module seconds — all pure
functions of the campaign definition — so the same campaign produces the
same bytes on any machine, in any execution mode, and the report can be
committed as a CI baseline (``baselines/obs-smoke/phase-report.md``).
``--wall`` adds the measured wall-clock columns for local profiling; those
are machine-dependent by nature and are never part of the baseline.

Aggregation is order-independent by construction: summaries are sorted by
``(system, scenario_id, repetition)`` before any float is summed, so the
append interleavings of parallel or dispatched workers cannot change a bit
of the output.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Sequence

from repro.bench.tables import format_markdown_table, format_percent
from repro.obs.trace import PHASES, iter_trace_summaries


def collect_summaries(directory: str | Path) -> list[dict[str, Any]]:
    """Every run summary under ``directory``, in deterministic order."""
    directory = Path(directory)
    if not directory.exists():
        raise FileNotFoundError(f"no such trace directory: {directory}")
    summaries: list[dict[str, Any]] = []
    for path in sorted(directory.rglob("*.trace.jsonl")):
        summaries.extend(iter_trace_summaries(path))
    summaries.sort(
        key=lambda s: (
            str(s.get("system", "")),
            str(s.get("scenario_id", "")),
            int(s.get("repetition", 0)),
        )
    )
    return summaries


def _aggregate(summaries: Sequence[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    """Per-system aggregates: span counts/walls, nominal seconds, counters."""
    systems: dict[str, dict[str, Any]] = {}
    for summary in summaries:
        system = str(summary.get("system", ""))
        agg = systems.setdefault(
            system,
            {"runs": 0, "spans": {}, "wall": {}, "nominal": {}, "counters": {}},
        )
        agg["runs"] += 1
        for phase, span in summary.get("spans", {}).items():
            agg["spans"][phase] = agg["spans"].get(phase, 0) + int(span.get("count", 0))
            agg["wall"][phase] = agg["wall"].get(phase, 0.0) + float(
                span.get("wall_s", 0.0)
            )
        for phase, seconds in summary.get("nominal_s", {}).items():
            agg["nominal"][phase] = agg["nominal"].get(phase, 0.0) + float(seconds)
        for name, value in summary.get("counters", {}).items():
            agg["counters"][name] = agg["counters"].get(name, 0) + int(value)
    return systems


def _phase_order(agg: dict[str, Any]) -> list[str]:
    known = [
        phase
        for phase in PHASES
        if phase in agg["spans"] or agg["nominal"].get(phase, 0.0) > 0.0
    ]
    extra = sorted(set(agg["spans"]) - set(known))
    return known + extra


def _seconds(value: float) -> str:
    return f"{value:.6f}"


def _skip_rate(counters: dict[str, int], skipped: str, executed: str) -> float:
    """Skips over skip opportunities (``frames-lost``/``clouds-lost`` count
    captures the harness later dropped, so they are already in ``executed``)."""
    total = counters.get(skipped, 0) + counters.get(executed, 0)
    return counters.get(skipped, 0) / total if total else float("nan")


def render_phase_report(
    summaries: Sequence[dict[str, Any]], *, wall: bool = False
) -> str:
    """The markdown phase-breakdown report over ``summaries``."""
    systems = _aggregate(summaries)
    lines = ["# Flight-trace phase report", ""]
    lines.append(
        f"{len(summaries)} traced run(s) across {len(systems)} system(s)."
    )
    lines.append(
        "Nominal seconds are the execution-platform model's deterministic "
        "module costs; span counts are deterministic too."
        + (" Wall seconds are measured on this machine." if wall else "")
    )
    lines.append("")

    headers = ["System", "Phase", "Spans", "Nominal s", "Nominal share"]
    if wall:
        headers += ["Wall s", "Wall share"]
    rows: list[list[object]] = []
    for system in sorted(systems):
        agg = systems[system]
        nominal_total = sum(agg["nominal"].values())
        wall_total = sum(agg["wall"].values())
        for phase in _phase_order(agg):
            nominal = agg["nominal"].get(phase)
            row: list[object] = [
                system,
                phase,
                agg["spans"].get(phase, 0),
                _seconds(nominal) if nominal is not None else "-",
                format_percent(nominal / nominal_total)
                if nominal is not None and nominal_total
                else "-",
            ]
            if wall:
                seconds = agg["wall"].get(phase, 0.0)
                row += [
                    _seconds(seconds),
                    format_percent(seconds / wall_total) if wall_total else "-",
                ]
            rows.append(row)
    lines.append(format_markdown_table(headers, rows))
    lines.append("")

    lines.append("## Fast-path and fault counters")
    lines.append("")
    counter_rows: list[list[object]] = []
    for system in sorted(systems):
        counters = systems[system]["counters"]
        for name in sorted(counters):
            counter_rows.append([system, name, counters[name]])
        counter_rows.append(
            [system, "frame-skip-rate",
             format_percent(_skip_rate(counters, "frames-skipped", "frames-rendered"))]
        )
        counter_rows.append(
            [system, "depth-skip-rate",
             format_percent(_skip_rate(counters, "depth-skipped", "depth-captures"))]
        )
    lines.append(format_markdown_table(["System", "Counter", "Total"], counter_rows))
    lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Aggregate flight-trace files into phase-breakdown reports.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="render the per-phase time-breakdown markdown report"
    )
    report.add_argument("dir", help="directory holding *.trace.jsonl files")
    report.add_argument("--out", default=None, help="write the report here")
    report.add_argument(
        "--wall", action="store_true",
        help="include measured wall-clock columns (machine-dependent; the "
        "default report is deterministic and baseline-safe)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        summaries = collect_summaries(args.dir)
        if not summaries:
            print(f"error: no *.trace.jsonl files under {args.dir}", file=sys.stderr)
            return 2
        rendered = render_phase_report(summaries, wall=args.wall)
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered, encoding="utf-8")
        print(f"phase report written to {path}")
    else:
        print(rendered, end="")
    return 0
