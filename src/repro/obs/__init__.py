"""Unified observability: flight-recorder tracing, metrics, and reports.

Three faces, one substrate:

* :mod:`repro.obs.trace` — the :class:`FlightRecorder` span API the mission
  runner streams per-phase timings through, as framed JSONL trace files that
  are strictly side-channel (campaign records stay byte-identical with
  tracing on or off).
* :mod:`repro.obs.metrics` — the process-local :data:`METRICS` registry of
  counters/gauges/histograms fed by the mission runner, the dispatch
  worker/queue, the fault-space probe backends and the campaign service,
  exported deterministically and served as Prometheus text on
  ``GET /metrics``.
* :mod:`repro.obs.report` — ``python -m repro.obs report <dir>``, the
  deterministic per-phase time-breakdown over a trace directory.

This package sits low in the layer order: ``trace`` depends only on
:mod:`repro.jsonl` and ``metrics`` on the stdlib, so core, dispatch, faults
and service layers can all instrument themselves without import cycles
(``report`` pulls in the bench table renderers and is imported lazily by
the CLI).
"""

from repro.obs.metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    PHASES,
    TRACE_KIND,
    TRACE_SCHEMA_VERSION,
    FlightRecorder,
    append_trace_summary,
    iter_trace_summaries,
    trace_filename,
)

__all__ = [
    "METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PHASES",
    "TRACE_KIND",
    "TRACE_SCHEMA_VERSION",
    "FlightRecorder",
    "append_trace_summary",
    "iter_trace_summaries",
    "trace_filename",
]
