"""Unified observability: flight-recorder tracing, metrics, and reports.

Three faces, one substrate:

* :mod:`repro.obs.trace` — the :class:`FlightRecorder` span API the mission
  runner streams per-phase timings through, as framed JSONL trace files that
  are strictly side-channel (campaign records stay byte-identical with
  tracing on or off).
* :mod:`repro.obs.metrics` — the process-local :data:`METRICS` registry of
  counters/gauges/histograms fed by the mission runner, the dispatch
  worker/queue, the fault-space probe backends and the campaign service,
  exported deterministically and served as Prometheus text on
  ``GET /metrics``.
* :mod:`repro.obs.report` — ``python -m repro.obs report <dir>``, the
  deterministic per-phase time-breakdown over a trace directory, and
  ``python -m repro.obs compare <a> <b>`` (:mod:`repro.obs.compare`), the
  statistical per-phase regression attribution between two of them.

Fleet-wide aggregation rides the same substrate: every worker process
flushes crash-safe snapshots of its registry
(:func:`repro.obs.export.flush_metrics`) into its dispatch directory, and
:func:`repro.obs.aggregate.fleet_render` merges any set of snapshots —
deterministically, regardless of arrival order — into one Prometheus page,
which is what the campaign service serves on ``GET /metrics``.

This package sits low in the layer order: ``trace`` depends only on
:mod:`repro.jsonl` and ``metrics``/``export``/``aggregate`` on the stdlib,
so core, dispatch, faults and service layers can all instrument themselves
without import cycles (``report`` and ``compare`` pull in the bench table
renderers and are imported lazily by the CLI).
"""

from repro.obs.aggregate import fleet_render, merge_snapshots, render_merged
from repro.obs.export import MetricsExporter, flush_metrics, process_exporter
from repro.obs.metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    PHASES,
    TRACE_KIND,
    TRACE_SCHEMA_VERSION,
    FlightRecorder,
    append_trace_summary,
    iter_trace_summaries,
    trace_filename,
)

__all__ = [
    "METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsExporter",
    "MetricsRegistry",
    "fleet_render",
    "flush_metrics",
    "merge_snapshots",
    "process_exporter",
    "render_merged",
    "PHASES",
    "TRACE_KIND",
    "TRACE_SCHEMA_VERSION",
    "FlightRecorder",
    "append_trace_summary",
    "iter_trace_summaries",
    "trace_filename",
]
