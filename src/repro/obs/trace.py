"""Flight-recorder tracing: per-phase mission timing as framed JSONL.

A :class:`FlightRecorder` rides along one mission run and accumulates, per
pipeline phase (sense → detect → map → plan → control, plus the simulator
physics and the fault-harness interception), a span count and total
wall-clock seconds, together with deterministic counters (fast-path skip
decisions, frames lost to faults) and the deterministic *nominal* module
costs the execution-platform model charges.  One summary line per run is
appended to a trace file next to the campaign results.

Tracing is strictly a side channel:

* it reads ``time.perf_counter`` only — never an RNG, never mission state it
  could perturb — so campaign records are byte-identical with tracing on or
  off (the contract the ``obs-smoke`` CI job enforces with ``cmp``);
* trace files reuse the repo's framed-JSONL rules (:mod:`repro.jsonl`): one
  header line (``kind: "flight-trace"``), then one summary object per run;
* appends are single ``os.write`` calls on ``O_APPEND`` descriptors and the
  header is created atomically (temp file + ``link``), so any number of
  campaign workers — processes or machines sharing the directory — can
  append to the same trace dir without coordination, and a reader never sees
  a headerless or interleaved file.

Wall-clock span totals are inherently machine-dependent; everything else in
a summary (span counts, skip counters, nominal seconds) is a pure function
of the campaign definition, which is what lets ``repro.obs report`` commit a
byte-stable baseline (see :mod:`repro.obs.report`).
"""

from __future__ import annotations

import json
import os
import re
import time
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.jsonl import iter_frame_records

#: Trace-file framing (the same gate discipline as campaign results).
TRACE_KIND = "flight-trace"
TRACE_SCHEMA_VERSION = 1

#: The instrumented mission phases, in pipeline order.  ``physics`` is the
#: simulated vehicle/EKF step (the ROADMAP's residual hot spot), ``sense`` is
#: sensor capture (camera + depth), ``detect``/``map``/``plan`` are the
#: landing-system modules, ``control`` is command application + platform
#: scheduling, and ``harness`` is fault-injection interception.
PHASES = ("physics", "sense", "detect", "map", "plan", "control", "harness")


class FlightRecorder:
    """Accumulates one mission run's per-phase spans and counters.

    Not thread-safe and not meant to be shared: every run gets its own
    recorder (they are cheap — a few dicts), and the mission runner only
    touches it behind ``if recorder is not None`` guards so the untraced
    hot path is unchanged.
    """

    __slots__ = ("span_counts", "span_seconds", "counters", "nominal_seconds", "_t0")

    def __init__(self) -> None:
        self.span_counts: dict[str, int] = {}
        self.span_seconds: dict[str, float] = {}
        self.counters: dict[str, int] = {}
        self.nominal_seconds: dict[str, float] = {
            "detect": 0.0, "map": 0.0, "plan": 0.0,
        }
        self._t0 = 0.0

    # -- spans ---------------------------------------------------------- #
    def start(self) -> float:
        """Begin a span; returns the start instant to pass to :meth:`add`."""
        return time.perf_counter()

    def add(self, phase: str, started: float) -> None:
        """Close a span opened at ``started`` under ``phase``."""
        elapsed = time.perf_counter() - started
        self.span_counts[phase] = self.span_counts.get(phase, 0) + 1
        self.span_seconds[phase] = self.span_seconds.get(phase, 0.0) + elapsed

    # -- deterministic quantities --------------------------------------- #
    def count(self, name: str, amount: int = 1) -> None:
        """Bump a deterministic event counter (skip decisions, lost frames)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def charge_nominal(self, detection: float, mapping: float, planning: float) -> None:
        """Accumulate the platform model's nominal per-tick module costs."""
        self.nominal_seconds["detect"] += detection
        self.nominal_seconds["map"] += mapping
        self.nominal_seconds["plan"] += planning

    # -- emission -------------------------------------------------------- #
    def summary(
        self, *, system: str, scenario_id: str, repetition: int
    ) -> dict[str, Any]:
        """One run's trace summary (the JSONL payload object)."""
        return {
            "scenario_id": scenario_id,
            "system": system,
            "repetition": repetition,
            "spans": {
                phase: {
                    "count": self.span_counts.get(phase, 0),
                    "wall_s": self.span_seconds.get(phase, 0.0),
                }
                for phase in sorted(self.span_counts)
            },
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "nominal_s": {
                phase: self.nominal_seconds[phase]
                for phase in sorted(self.nominal_seconds)
            },
        }


# ---------------------------------------------------------------------- #
# trace files
# ---------------------------------------------------------------------- #
def trace_filename(system_name: str) -> str:
    """Trace file for one system's runs (mirrors the campaign-result naming)."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", system_name) + ".trace.jsonl"


def _trace_header(system_name: str) -> dict[str, Any]:
    return {
        "kind": TRACE_KIND,
        "schema": TRACE_SCHEMA_VERSION,
        "system": system_name,
        "phases": list(PHASES),
    }


def _ensure_header(path: Path, system_name: str) -> None:
    """Create the trace file with its header line, atomically.

    The header is written to a unique temp file first and ``link``-ed into
    place: concurrent appenders either see the complete header already on
    disk or race to create it, and the loser just discards its temp file —
    no appender can ever observe (or append to) a headerless file.
    """
    if path.exists():
        return
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(_trace_header(system_name), sort_keys=True) + "\n"
    tmp = path.with_name(f"{path.name}.hdr-{os.getpid()}-{time.monotonic_ns()}")
    tmp.write_text(line, encoding="utf-8")
    try:
        os.link(tmp, path)
    except FileExistsError:
        pass  # another appender won the race; its header is identical
    finally:
        tmp.unlink()


def append_trace_summary(
    directory: str | Path,
    recorder: FlightRecorder,
    *,
    system: str,
    scenario_id: str,
    repetition: int,
    correlation: Mapping[str, str] | None = None,
) -> Path:
    """Append one run's summary to ``<directory>/<system>.trace.jsonl``.

    The payload is one line, written with a single ``write`` on an
    ``O_APPEND`` descriptor, so concurrent appends from parallel campaign
    workers interleave at line granularity only (the same guarantee as
    campaign-result appends).  ``correlation`` (job/shard/probe ids, see
    :meth:`repro.bench.campaign.Campaign.correlate`) is stamped into the
    summary as a ``corr`` object when given; summaries without one render
    byte-identically to pre-correlation trace files.
    """
    directory = Path(directory)
    path = directory / trace_filename(system)
    _ensure_header(path, system)
    payload = recorder.summary(
        system=system, scenario_id=scenario_id, repetition=repetition
    )
    if correlation:
        payload["corr"] = {str(key): str(value) for key, value in correlation.items()}
    line = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    fd = os.open(path, os.O_WRONLY | os.O_APPEND)
    try:
        os.write(fd, line)
    finally:
        os.close(fd)
    return path


def iter_trace_summaries(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield every run summary in one trace file (torn tails tolerated)."""
    yield from iter_frame_records(
        path,
        TRACE_KIND,
        TRACE_SCHEMA_VERSION,
        json.loads,
        description="trace summary",
    )
