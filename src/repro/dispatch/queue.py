"""Filesystem-backed shard work queue: atomic claims, leases, heartbeats.

Coordination is plain files inside each shard directory, so any set of
processes — on one machine or many sharing the dispatch directory — form the
worker pool without a broker:

* ``lease.json`` is the claim.  It is created with ``O_CREAT | O_EXCL``, so
  exactly one worker can claim an unclaimed shard, and refreshed in place by
  the owner's heartbeat.
* A lease whose heartbeat is older than its ``lease_seconds`` is *stale*:
  the owning worker crashed (or lost the directory).  Stealing a stale lease
  is an atomic ``rename`` of the lease file to a unique name — at most one
  contender grabs any given lease file, and the winner verifies it grabbed
  the exact lease it observed stale (restoring it otherwise) before
  re-creating the lease with ``O_EXCL``.  The new owner resumes from the
  records the dead worker already persisted.
* ``done.json`` marks completion (with per-system record counts); it is
  written atomically before the lease is released, so a shard is never
  observable as both unclaimed and unfinished once its work exists.

Ownership transfer is *eventually* exclusive, not instantaneous: a worker
that stalls past its own lease learns of the eviction at its next heartbeat
or release (both token-guarded), so for a short window the displaced owner
and the new one can both be flying the shard.  That window only duplicates
work — missions are deterministic and the merger collapses identical
duplicate records — it never corrupts the outcome (in the worst case, an
append interleaving that tears a record line makes the merger *refuse*
rather than guess).  Lease expiry compares
the lease's own heartbeat timestamp against this machine's clock, so
multi-machine pools need loosely synchronised clocks (NTP-level skew is
fine for the default 60 s lease).
"""

from __future__ import annotations

import enum
import json
import os
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

from repro.dispatch.planner import (
    DispatchPlan,
    ShardSpec,
    load_plan,
    shard_dir,
    shard_results_dir,
    write_json_atomic,
)
from repro.obs.metrics import METRICS

#: Default worker lease: a heartbeat older than this marks the worker dead.
DEFAULT_LEASE_SECONDS = 60.0

LEASE_FILENAME = "lease.json"
DONE_FILENAME = "done.json"


class ShardState(enum.Enum):
    """Lifecycle of one shard in the queue."""

    PENDING = "pending"      # unclaimed, not done
    RUNNING = "running"      # claimed, heartbeat fresh
    STALE = "stale"          # claimed, heartbeat expired (owner presumed dead)
    DONE = "done"            # done.json present


class LeaseLostError(RuntimeError):
    """The worker's lease was evicted (it stalled past its own lease)."""


@dataclass
class ShardStatus:
    """One shard's observable queue state (for ``dispatch status`` / tests)."""

    shard: ShardSpec
    state: ShardState
    worker: str = ""
    heartbeat_age: float | None = None
    records: int | None = None
    #: The lease the shard was claimed under; with ``heartbeat_age`` this is
    #: what makes a stuck worker diagnosable from ``dispatch status`` alone
    #: (age vs limit) instead of reading ``lease.json`` by hand.
    lease_seconds: float | None = None

    @property
    def stale(self) -> bool:
        """Heartbeat expired: the owning worker is presumed dead."""
        return self.state is ShardState.STALE

    def to_dict(self) -> dict:
        """JSON-compatible view (``dispatch status --json`` / the service)."""
        return {
            "shard": self.shard.name,
            "index": self.shard.index,
            "start": self.shard.start,
            "stop": self.shard.stop,
            "fingerprint": self.shard.fingerprint,
            "state": self.state.value,
            "worker": self.worker or None,
            "heartbeat_age": self.heartbeat_age,
            "lease_seconds": self.lease_seconds,
            "stale": self.stale,
            "records": self.records,
        }


class ShardLease:
    """An exclusive, heartbeat-renewed claim on one shard."""

    def __init__(
        self,
        queue: "ShardQueue",
        shard: ShardSpec,
        worker_id: str,
        lease_seconds: float,
        token: str,
    ) -> None:
        self.queue = queue
        self.shard = shard
        self.worker_id = worker_id
        self.lease_seconds = lease_seconds
        self.token = token
        self.released = False

    @property
    def path(self) -> Path:
        return self.queue.lease_path(self.shard)

    @property
    def results_dir(self) -> Path:
        return shard_results_dir(self.queue.directory, self.shard)

    def _payload(self) -> dict:
        return {
            "kind": "shard-lease",
            "shard": self.shard.index,
            "worker": self.worker_id,
            "token": self.token,
            "heartbeat_at": time.time(),
            "lease_seconds": self.lease_seconds,
        }

    def heartbeat(self) -> None:
        """Refresh the lease; raises :class:`LeaseLostError` if evicted."""
        if self.released:
            raise LeaseLostError(f"lease on {self.shard.name} already released")
        try:
            current = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            current = None
        if not current or current.get("token") != self.token:
            raise LeaseLostError(
                f"lease on {self.shard.name} was evicted (worker stalled past "
                f"its {self.lease_seconds:.0f}s lease and another worker took over)"
            )
        write_json_atomic(self.path, self._payload())

    def mark_done(self, records: dict[str, int]) -> None:
        """Atomically publish completion, then release the claim."""
        write_json_atomic(
            self.queue.done_path(self.shard),
            {
                "kind": "shard-done",
                "shard": self.shard.index,
                "shard_fingerprint": self.shard.fingerprint,
                "plan": self.queue.plan.fingerprint,
                "worker": self.worker_id,
                "records": records,
            },
        )
        self.release()

    def release(self) -> None:
        """Drop the claim (done or not); idempotent.

        Token-guarded: if this lease was evicted while we stalled, the file
        on disk now belongs to another worker and must not be unlinked.
        """
        if self.released:
            return
        self.released = True
        current = ShardQueue._parse_lease(self.path)
        if current is not None and current.get("token") != self.token:
            return  # evicted: the lease is the new owner's now
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


class ShardQueue:
    """The queue view over one dispatch directory."""

    def __init__(self, directory: str | Path, plan: DispatchPlan | None = None) -> None:
        self.directory = Path(directory)
        self.plan = plan if plan is not None else load_plan(directory)

    # ------------------------------------------------------------------ #
    def lease_path(self, shard: ShardSpec) -> Path:
        return shard_dir(self.directory, shard) / LEASE_FILENAME

    def done_path(self, shard: ShardSpec) -> Path:
        return shard_dir(self.directory, shard) / DONE_FILENAME

    def read_done(self, shard: ShardSpec) -> dict | None:
        """The shard's completion marker, validated against the plan."""
        path = self.done_path(shard)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as error:
            raise ValueError(f"{path}: malformed completion marker: {error}") from error
        if data.get("plan") != self.plan.fingerprint:
            raise ValueError(
                f"{path} was produced under a different dispatch plan "
                f"({data.get('plan')} != {self.plan.fingerprint})"
            )
        return data

    # ------------------------------------------------------------------ #
    @staticmethod
    def _parse_lease(path: Path) -> dict | None:
        """The lease file's payload, or ``None`` when missing/torn."""
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    def _lease_heartbeat(self, shard: ShardSpec) -> tuple[dict | None, float | None]:
        """(payload, heartbeat timestamp) of the shard's lease, if any.

        A torn/unreadable lease file (its writer died mid-write) falls back
        to the file's mtime, so it still expires and gets evicted.
        """
        path = self.lease_path(shard)
        payload = self._parse_lease(path)
        if payload is not None:
            try:
                return payload, float(payload["heartbeat_at"])
            except (KeyError, TypeError, ValueError):
                pass
        try:
            return payload if payload is not None else {}, path.stat().st_mtime
        except OSError:
            return None, None

    def status(self) -> list[ShardStatus]:
        """A point-in-time snapshot of every shard's state."""
        now = time.time()
        statuses: list[ShardStatus] = []
        for shard in self.plan.shards:
            done = self.read_done(shard)
            if done is not None:
                records = done.get("records") or {}
                statuses.append(
                    ShardStatus(
                        shard=shard,
                        state=ShardState.DONE,
                        worker=str(done.get("worker", "")),
                        records=sum(records.values()),
                    )
                )
                continue
            payload, heartbeat = self._lease_heartbeat(shard)
            if heartbeat is None:
                statuses.append(ShardStatus(shard=shard, state=ShardState.PENDING))
                continue
            age = max(0.0, now - heartbeat)
            lease_seconds = float(
                (payload or {}).get("lease_seconds", DEFAULT_LEASE_SECONDS)
            )
            statuses.append(
                ShardStatus(
                    shard=shard,
                    state=ShardState.STALE if age > lease_seconds else ShardState.RUNNING,
                    worker=str((payload or {}).get("worker", "")),
                    heartbeat_age=age,
                    lease_seconds=lease_seconds,
                )
            )
        self._export_status_metrics(statuses)
        return statuses

    def _export_status_metrics(self, statuses: list[ShardStatus]) -> None:
        """Mirror the snapshot into the process-local metrics registry."""
        shards = METRICS.gauge(
            "repro_dispatch_shards", "Shards by queue state, per dispatch plan."
        )
        states = [status.state.value for status in statuses]
        for state in ShardState:
            shards.set(states.count(state.value), plan=self.plan.name, state=state.value)
        ages = [s.heartbeat_age for s in statuses if s.heartbeat_age is not None]
        METRICS.gauge(
            "repro_dispatch_oldest_heartbeat_age_seconds",
            "Age of the stalest live lease heartbeat, per dispatch plan.",
        ).set(max(ages) if ages else 0.0, plan=self.plan.name)

    def all_done(self) -> bool:
        return all(self.read_done(shard) is not None for shard in self.plan.shards)

    def status_payload(self) -> dict:
        """The queue's full state as one JSON-compatible object.

        The machine-readable face of :meth:`status`, shared by
        ``python -m repro.dispatch status --json`` and the campaign
        service's job-status endpoints, so the two surfaces cannot drift.
        """
        statuses = self.status()
        states = [status.state.value for status in statuses]
        runs_done = sum(
            self.plan.runs_per_shard(status.shard)
            for status in statuses
            if status.state is ShardState.DONE
        )
        return {
            "name": self.plan.name,
            "fingerprint": self.plan.fingerprint,
            "context": self.plan.context,
            "platform": self.plan.platform,
            "systems": [system.name for system in self.plan.systems],
            "suite_count": self.plan.suite_count,
            "repetitions": self.plan.repetitions,
            "faults": [spec.name for spec in self.plan.faults],
            "total_runs": self.plan.total_runs,
            "runs_done": runs_done,
            "records": sum(status.records or 0 for status in statuses),
            "shard_states": {
                state.value: states.count(state.value) for state in ShardState
            },
            "all_done": states.count(ShardState.DONE.value) == len(statuses),
            "shards": [status.to_dict() for status in statuses],
        }

    # ------------------------------------------------------------------ #
    def claim(
        self, worker_id: str, lease_seconds: float = DEFAULT_LEASE_SECONDS
    ) -> ShardLease | None:
        """Claim the first claimable shard, or ``None`` when there is none.

        Claimable: no ``done.json`` and either no lease or a stale one.
        """
        for shard in self.plan.shards:
            if self.read_done(shard) is not None:
                continue
            lease = self._try_claim(shard, worker_id, lease_seconds)
            if lease is not None:
                return lease
        return None

    def _try_claim(
        self, shard: ShardSpec, worker_id: str, lease_seconds: float
    ) -> ShardLease | None:
        path = self.lease_path(shard)
        token = f"{worker_id}-{uuid.uuid4().hex}"
        lease = ShardLease(self, shard, worker_id, lease_seconds, token)
        claims = METRICS.counter(
            "repro_dispatch_claims_total", "Shard claim attempts by outcome."
        )
        via = "fresh"
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            observed, heartbeat = self._lease_heartbeat(shard)
            if heartbeat is None:
                return None  # released between our listing and now; next pass
            current_lease = float(
                (observed or {}).get("lease_seconds", lease_seconds)
            )
            if time.time() - heartbeat <= current_lease:
                return None  # alive owner
            # Stale: the rename is atomic, so at most one contender grabs any
            # given lease file — but the file could have been *replaced* (a
            # rival's win, or the stalled owner's recovered heartbeat) between
            # our staleness check and the rename, so verify we grabbed the
            # lease we actually observed stale before treating it as ours.
            evicted = path.with_name(f"{path.name}.evicted-{token}")
            try:
                os.rename(path, evicted)
            except FileNotFoundError:
                return None  # another contender won (or the owner released)
            grabbed = self._parse_lease(evicted)
            identity = lambda p: (p.get("token"), p.get("heartbeat_at")) if p else None
            if identity(grabbed) != identity(observed):
                # We displaced a *fresh* lease; restore it without clobbering
                # any newer claim (link fails if one appeared — the displaced
                # owner's next heartbeat then raises LeaseLostError, so the
                # shard still has exactly one owner).
                try:
                    os.link(evicted, path)
                except FileExistsError:
                    pass
                evicted.unlink()
                return None
            evicted.unlink()
            via = "stolen"
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return None  # lost the re-create race to a fresh claimer
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(lease._payload(), handle, sort_keys=True)
            handle.write("\n")
        # A worker can die after done.json but before releasing its lease;
        # the claim then succeeds on a finished shard — hand it straight back.
        if self.read_done(shard) is not None:
            lease.release()
            return None
        claims.inc(result=via)
        return lease
