"""The dispatch worker: claim shards, fly them, publish completion.

A worker is a plain process pointed at a dispatch directory.  It loops —
claim a shard, run the shard's slice of the campaign, mark it done — until
every shard of the plan is finished, so any number of workers (on any
machines sharing the directory) drain the queue cooperatively and exit
together.

Crash safety comes from composing two existing mechanisms:

* every completed run is persisted immediately by ``Campaign.out(...)``
  append-through persistence, and
* the shard's lease expires when the worker stops heartbeating,

so a worker killed mid-shard loses at most its in-flight mission: whoever
re-claims the shard resumes from the persisted records instead of re-flying
them.  The heartbeat runs on a daemon thread because a single mission can
legitimately take longer than the lease.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.bench.campaign import Campaign
from repro.dispatch.planner import DispatchPlan, ShardSpec, load_plan, load_suite
from repro.dispatch.queue import (
    DEFAULT_LEASE_SECONDS,
    ShardLease,
    ShardQueue,
)
from repro.obs.export import flush_metrics
from repro.obs.metrics import METRICS
from repro.world.scenario_suite import ScenarioSuite

#: How often a shard's queue state is re-polled while nothing is claimable.
DEFAULT_POLL_SECONDS = 0.5


def default_worker_id() -> str:
    """A human-traceable unique worker id: host, pid and a random suffix."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


@dataclass
class WorkerReport:
    """What one worker loop accomplished (returned by :func:`run_worker`)."""

    worker_id: str
    shards_completed: list[int] = field(default_factory=list)
    records_flown: int = 0


class _ShardAbandoned(Exception):
    """Raised between missions when the shard's lease was lost mid-flight."""


class _Heartbeat:
    """A daemon thread refreshing a lease while its shard executes."""

    def __init__(self, lease: ShardLease, interval: float) -> None:
        self._lease = lease
        self._interval = max(0.05, interval)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{lease.shard.name}", daemon=True
        )
        self.error: Exception | None = None

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._lease.heartbeat()
            except Exception as error:  # LeaseLostError or I/O trouble
                self.error = error
                return

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def _shard_campaign(
    plan: DispatchPlan,
    suite: ScenarioSuite,
    shard: ShardSpec,
    results_dir: Path,
    progress: Callable[[str], None] | None,
) -> Campaign:
    """The campaign executing exactly one shard's slice of the plan."""
    campaign = (
        Campaign(*plan.systems)
        .suite(suite.slice(shard.start, shard.stop))
        .repetitions(plan.repetitions)
        .mission(plan.mission)
        .platform(plan.platform)
        .faults(*plan.faults)
        .out(results_dir)
        # Correlation context: the plan fingerprint prefix and shard name
        # ride every run's metric labels and trace summaries, so fleet
        # series link back to the dispatch unit that produced them.
        .correlate(job=plan.fingerprint[:10], shard=shard.name)
    )
    if progress is not None:
        campaign.progress(progress)
    return campaign


def run_worker(
    directory: str | Path,
    *,
    worker_id: str | None = None,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    poll_seconds: float = DEFAULT_POLL_SECONDS,
    max_shards: int | None = None,
    wait: bool = True,
    progress: Callable[[str], None] | None = None,
) -> WorkerReport:
    """Drain shards from a dispatch directory until the plan is complete.

    Args:
        directory: the planned dispatch directory (see
            :func:`repro.dispatch.planner.plan_dispatch`).
        worker_id: identity written into leases and completion markers.
        lease_seconds: how long after the last heartbeat other workers may
            presume this worker dead and re-claim its shard.
        poll_seconds: re-poll interval while other workers hold every
            remaining shard.
        max_shards: stop after completing this many shards (``None``: all).
        wait: when nothing is claimable but the plan is unfinished, keep
            polling (``True``, the default — this is what lets a surviving
            worker pick up a crashed one's shard once its lease expires)
            or return immediately (``False``).
        progress: optional callback receiving one line per completed run.
    """
    directory = Path(directory)
    plan = load_plan(directory)
    suite = load_suite(directory, plan)
    queue = ShardQueue(directory, plan)
    report = WorkerReport(worker_id=worker_id or default_worker_id())

    while True:
        if max_shards is not None and len(report.shards_completed) >= max_shards:
            break
        lease = queue.claim(report.worker_id, lease_seconds)
        if lease is None:
            if queue.all_done() or not wait:
                break
            time.sleep(poll_seconds)
            continue
        shard = lease.shard
        heartbeat = _Heartbeat(lease, interval=lease_seconds / 3.0)

        def per_run(line: str, _heartbeat=heartbeat) -> None:
            # Runs after every completed mission: noticing a lost lease here
            # bounds the duplicated work to one in-flight mission instead of
            # the rest of the shard.
            if _heartbeat.error is not None:
                raise _ShardAbandoned(str(_heartbeat.error))
            if progress is not None:
                progress(line)

        try:
            if progress is not None:
                # Inside the release-on-raise block: a progress callback that
                # raises (the service's cancel signal) must not leak the lease.
                progress(
                    f"[{report.worker_id}] claimed {shard.name} "
                    f"({shard.stop - shard.start} scenarios, "
                    f"{plan.runs_per_shard(shard)} runs)"
                )
            campaign = _shard_campaign(plan, suite, shard, lease.results_dir, per_run)
            with heartbeat:
                results = campaign.run()
        except _ShardAbandoned:
            results = None
        except BaseException:
            # Let another worker (or a retry of this one) have the shard
            # immediately; the records persisted so far are kept and resumed.
            # (release() is token-guarded, so if the real problem was a lost
            # lease it leaves the new owner's claim alone.)
            lease.release()
            raise
        if results is None or heartbeat.error is not None:
            # We stalled past our own lease and another worker took the
            # shard over: it is theirs now.  Do not publish done.json and do
            # not touch the (new owner's) lease — our persisted records stay
            # for the new owner to resume from.
            if progress is not None:
                progress(
                    f"[{report.worker_id}] lost the lease on {shard.name} "
                    f"mid-shard ({heartbeat.error}); abandoning it to the new owner"
                )
            METRICS.counter(
                "repro_dispatch_leases_lost_total",
                "Shard leases this worker stalled past and lost mid-shard.",
            ).inc()
            flush_metrics(directory)
            continue
        counts = {name: len(result) for name, result in results.items()}
        lease.mark_done(counts)
        report.shards_completed.append(shard.index)
        report.records_flown += sum(counts.values())
        METRICS.counter(
            "repro_dispatch_shards_completed_total",
            "Shards this worker claimed and drove to done.json.",
        ).inc()
        METRICS.counter(
            "repro_dispatch_records_flown_total",
            "Campaign records produced by this worker's completed shards.",
        ).inc(sum(counts.values()))
        # Publish this process's registry state next to the shard outputs:
        # per-shard (not per-run) keeps flushing off the mission hot path
        # while the fleet aggregator still sees progress as shards land.
        flush_metrics(directory)
        if progress is not None:
            progress(f"[{report.worker_id}] completed {shard.name}")
    flush_metrics(directory)
    return report


# ---------------------------------------------------------------------- #
# local multi-worker convenience
# ---------------------------------------------------------------------- #
def _local_worker_entry(
    directory: str, worker_id: str, lease_seconds: float
) -> None:  # pragma: no cover - exercised via subprocesses
    run_worker(directory, worker_id=worker_id, lease_seconds=lease_seconds)


def run_local_workers(
    directory: str | Path,
    *,
    workers: int = 2,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
) -> None:
    """Drain a dispatch directory with ``workers`` local worker processes.

    The in-machine convenience behind ``python -m repro.dispatch run`` and
    ``Campaign.dispatch(...)``; cross-machine pools just start
    ``python -m repro.dispatch work`` everywhere instead.  With
    ``workers=1`` the queue is drained in-process (no fork), which keeps
    single-worker dispatch debuggable.
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    directory = Path(directory)
    load_plan(directory)  # fail fast before spawning anything
    if workers == 1:
        run_worker(directory, lease_seconds=lease_seconds)
        return

    import multiprocessing

    prefix = default_worker_id()
    processes = [
        multiprocessing.Process(
            target=_local_worker_entry,
            args=(str(directory), f"{prefix}-w{index}", lease_seconds),
            name=f"dispatch-worker-{index}",
        )
        for index in range(workers)
    ]
    for process in processes:
        process.start()
    failures = []
    for process in processes:
        process.join()
        if process.exitcode != 0:
            failures.append(f"{process.name} exited with code {process.exitcode}")
    if failures:
        raise RuntimeError(
            "dispatch worker process(es) failed: " + "; ".join(failures)
        )
