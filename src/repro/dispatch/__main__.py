"""``python -m repro.dispatch`` entry point."""

from repro.dispatch.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
