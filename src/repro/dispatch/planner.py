"""Deterministic shard planning for distributed campaign dispatch.

A *dispatch plan* splits one campaign — a scenario suite x systems x
repetitions grid with a fixed mission config and platform — into contiguous,
content-fingerprinted shards that independent workers can claim and execute
(see :mod:`repro.dispatch.queue` / :mod:`repro.dispatch.worker`).

The plan is plain files under one directory, which is the whole coordination
surface — workers on any machine that shares the directory (NFS, a synced
volume, or just the same host) can join::

    <dir>/plan.json                  the plan: systems, mission, shards
    <dir>/suite.jsonl                the exact scenarios (canonical JSONL)
    <dir>/shards/shard-0000/         one directory per shard
        manifest.json                the shard's slice + fingerprints
        results/                     Campaign.out(...) persistence (resume!)
        lease.json                   worker claim + heartbeat (queue.py)
        done.json                    completion marker with record counts

Everything is content-fingerprinted: the plan fingerprint pins suite
contents, systems, repetitions, mission and platform, and each shard
manifest pins its scenario slice, so a worker or merger can always tell a
stale directory from a resumable one.  Planning is deterministic — the same
campaign always produces byte-identical plan files.
"""

from __future__ import annotations

import json
import os
import uuid
from dataclasses import asdict as dataclasses_asdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.bench.campaign import (
    PLATFORM_FACTORIES,
    campaign_context_fingerprint,
)
from repro.core.config import LandingSystemConfig
from repro.core.mission import MissionConfig
from repro.faults.spec import FaultSpec
from repro.jsonl import sha16_of_json as _sha16
from repro.world.scenario_suite import ScenarioSuite

#: Schema version stamped into plan.json / manifest.json.  Version 2 added
#: the optional ``faults`` list (the campaign's fault-injection axis);
#: fault-free plans keep identical fingerprints across versions, so
#: existing dispatch directories remain resumable.
PLAN_SCHEMA_VERSION = 2

#: Filenames under the dispatch directory.
PLAN_FILENAME = "plan.json"
SUITE_FILENAME = "suite.jsonl"
SHARDS_DIRNAME = "shards"
MERGED_DIRNAME = "merged"


def suite_fingerprint(suite: ScenarioSuite) -> str:
    """Content hash of a suite's scenarios (order-sensitive)."""
    return _sha16([scenario.fingerprint() for scenario in suite])


@dataclass(frozen=True)
class ShardSpec:
    """One shard: a contiguous scenario slice of the plan's suite."""

    index: int
    start: int
    stop: int
    scenario_ids: tuple[str, ...]
    fingerprint: str

    @property
    def name(self) -> str:
        return f"shard-{self.index:04d}"

    def to_dict(self) -> dict[str, Any]:
        data = dataclasses_asdict(self)
        data["scenario_ids"] = list(self.scenario_ids)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShardSpec":
        return cls(
            index=int(data["index"]),
            start=int(data["start"]),
            stop=int(data["stop"]),
            scenario_ids=tuple(data["scenario_ids"]),
            fingerprint=str(data["fingerprint"]),
        )


@dataclass
class DispatchPlan:
    """The persisted description of one sharded campaign."""

    name: str
    systems: list[LandingSystemConfig]
    repetitions: int
    mission: MissionConfig
    platform: str
    suite_count: int
    suite_fingerprint: str
    shards: list[ShardSpec] = field(default_factory=list)
    faults: list[FaultSpec] = field(default_factory=list)
    fingerprint: str = ""

    @property
    def context(self) -> str:
        """The campaign context fingerprint shard result headers must carry."""
        return campaign_context_fingerprint(self.mission, self.platform, self.faults)

    def identity(self) -> dict[str, Any]:
        """The fingerprint-relevant content (shared by plan and shard hashes)."""
        identity: dict[str, Any] = {
            "suite_fingerprint": self.suite_fingerprint,
            "systems": [system.to_dict() for system in self.systems],
            "repetitions": self.repetitions,
            "mission": dataclasses_asdict(self.mission),
            "platform": self.platform,
        }
        # Included only when declared: fault-free plan fingerprints must not
        # change across versions (idempotent re-planning into old dirs).
        if self.faults:
            identity["faults"] = [spec.to_dict() for spec in self.faults]
        return identity

    def compute_fingerprint(self) -> str:
        """The fingerprint this plan's contents *should* carry.

        Recomputed on load so an edited plan.json whose stored fingerprint
        was not updated is refused, not silently flown.
        """
        return _sha16({**self.identity(), "shards": len(self.shards)})

    @property
    def total_runs(self) -> int:
        return self.suite_count * self.repetitions * len(self.systems)

    def runs_per_shard(self, shard: ShardSpec) -> int:
        return (shard.stop - shard.start) * self.repetitions * len(self.systems)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        data = {
            "kind": "dispatch-plan",
            # A fault-free plan still declares schema 1, so pre-fault readers
            # keep accepting it; only plans that *need* the faults key claim 2.
            "schema": PLAN_SCHEMA_VERSION if self.faults else 1,
            "name": self.name,
            "systems": [system.to_dict() for system in self.systems],
            "repetitions": self.repetitions,
            "mission": dataclasses_asdict(self.mission),
            "platform": self.platform,
            "context": self.context,
            "suite_file": SUITE_FILENAME,
            "suite_count": self.suite_count,
            "suite_fingerprint": self.suite_fingerprint,
            "shards": [shard.to_dict() for shard in self.shards],
        }
        if self.faults:
            data["faults"] = [spec.to_dict() for spec in self.faults]
        data["fingerprint"] = self.fingerprint
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DispatchPlan":
        if data.get("kind") != "dispatch-plan":
            raise ValueError(f"not a dispatch plan (kind={data.get('kind')!r})")
        schema = int(data.get("schema", 1))
        if schema > PLAN_SCHEMA_VERSION:
            raise ValueError(
                f"dispatch plan uses schema {schema}, but this version reads "
                f"at most schema {PLAN_SCHEMA_VERSION}; upgrade to read it"
            )
        return cls(
            name=str(data["name"]),
            systems=[LandingSystemConfig.from_dict(d) for d in data["systems"]],
            repetitions=int(data["repetitions"]),
            mission=MissionConfig(**data["mission"]),
            platform=str(data["platform"]),
            suite_count=int(data["suite_count"]),
            suite_fingerprint=str(data["suite_fingerprint"]),
            shards=[ShardSpec.from_dict(d) for d in data["shards"]],
            faults=[FaultSpec.from_dict(d) for d in data.get("faults", [])],
            fingerprint=str(data.get("fingerprint", "")),
        )


# ---------------------------------------------------------------------- #
# directory layout
# ---------------------------------------------------------------------- #
def plan_path(directory: str | Path) -> Path:
    return Path(directory) / PLAN_FILENAME


def suite_path(directory: str | Path) -> Path:
    return Path(directory) / SUITE_FILENAME


def shard_dir(directory: str | Path, shard: ShardSpec) -> Path:
    return Path(directory) / SHARDS_DIRNAME / shard.name


def shard_results_dir(directory: str | Path, shard: ShardSpec) -> Path:
    return shard_dir(directory, shard) / "results"


def merged_dir(directory: str | Path) -> Path:
    return Path(directory) / MERGED_DIRNAME


# ---------------------------------------------------------------------- #
# planning
# ---------------------------------------------------------------------- #
def _partition(count: int, shards: int) -> list[tuple[int, int]]:
    """Balanced contiguous [start, stop) slices; earlier shards get the rest."""
    shards = min(shards, count)
    base, extra = divmod(count, shards)
    slices: list[tuple[int, int]] = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        slices.append((start, stop))
        start = stop
    return slices


def _build_plan(
    suite: ScenarioSuite,
    systems: Sequence[LandingSystemConfig],
    shards: int,
    repetitions: int,
    mission: MissionConfig,
    platform: str,
    faults: Sequence[FaultSpec] = (),
) -> DispatchPlan:
    scenario_fingerprints = [scenario.fingerprint() for scenario in suite]
    plan = DispatchPlan(
        name=suite.name or "campaign",
        systems=list(systems),
        repetitions=repetitions,
        mission=mission,
        platform=platform,
        suite_count=len(suite),
        suite_fingerprint=_sha16(scenario_fingerprints),
        faults=list(faults),
    )
    base_identity = plan.identity()
    scenario_ids = [scenario.scenario_id for scenario in suite]
    for index, (start, stop) in enumerate(_partition(len(suite), shards)):
        plan.shards.append(
            ShardSpec(
                index=index,
                start=start,
                stop=stop,
                scenario_ids=tuple(scenario_ids[start:stop]),
                fingerprint=_sha16(
                    {
                        **base_identity,
                        "start": start,
                        "stop": stop,
                        "scenarios": scenario_fingerprints[start:stop],
                    }
                ),
            )
        )
    plan.fingerprint = plan.compute_fingerprint()
    return plan


def write_json_atomic(
    path: str | Path, payload: dict[str, Any], *, indent: int | None = None
) -> None:
    """Atomic (write-temp-then-replace) deterministic JSON dump.

    The one JSON writer for the whole dispatch directory (plans, manifests,
    leases, completion markers).  The temp name is unique per write, so
    concurrent writers racing on the same path can never tear each other's
    temp file — the final ``os.replace`` settles who wins.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp-{uuid.uuid4().hex[:8]}")
    tmp.write_text(
        json.dumps(payload, sort_keys=True, indent=indent) + "\n", encoding="utf-8"
    )
    os.replace(tmp, path)


def build_plan(
    suite: ScenarioSuite,
    systems: Sequence[LandingSystemConfig],
    *,
    shards: int,
    repetitions: int | None = None,
    mission: MissionConfig | None = None,
    platform: str = "desktop",
    faults: Sequence[FaultSpec] = (),
) -> DispatchPlan:
    """Validate and build a dispatch plan in memory (no files written).

    The pure half of :func:`plan_dispatch`: planning is deterministic, so
    callers that need a campaign's *identity* before (or without) touching
    disk — the campaign service deduplicates submissions by the resulting
    plan fingerprint — build the plan here and write it later.
    """
    if shards <= 0:
        raise ValueError("shards must be positive")
    if len(suite) == 0:
        raise ValueError("cannot dispatch an empty suite")
    if not systems:
        raise ValueError("cannot dispatch without systems")
    if platform not in PLATFORM_FACTORIES:
        raise ValueError(
            f"unknown platform {platform!r}; expected one of {sorted(PLATFORM_FACTORIES)}"
        )
    names = [system.name for system in systems]
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        raise ValueError(
            f"duplicate system names {duplicates}: give each system a "
            f"distinct name (LandingSystemConfig.custom(..., name=...))"
        )
    if repetitions is None:
        repetitions = suite.repetitions
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    return _build_plan(
        suite, systems, shards, repetitions, mission or MissionConfig(), platform,
        faults=faults,
    )


def plan_dispatch(
    directory: str | Path,
    suite: ScenarioSuite,
    systems: Sequence[LandingSystemConfig],
    *,
    shards: int,
    repetitions: int | None = None,
    mission: MissionConfig | None = None,
    platform: str = "desktop",
    faults: Sequence[FaultSpec] = (),
) -> DispatchPlan:
    """Plan (or re-join) a sharded campaign under ``directory``.

    Idempotent: planning the same campaign into a directory that already
    holds an identical plan returns the existing plan, so every worker — and
    a re-run of the whole dispatch — can call this unconditionally.  A
    directory holding a *different* plan is refused.
    """
    directory = Path(directory)
    plan = build_plan(
        suite,
        systems,
        shards=shards,
        repetitions=repetitions,
        mission=mission,
        platform=platform,
        faults=faults,
    )
    existing_path = plan_path(directory)
    if existing_path.exists():
        existing = load_plan(directory)
        if existing.fingerprint != plan.fingerprint:
            raise ValueError(
                f"{directory} already holds a different dispatch plan "
                f"({existing.fingerprint} != {plan.fingerprint}); use a fresh "
                f"directory or delete the stale plan"
            )
        return existing

    suite.to_jsonl(suite_path(directory))
    for shard in plan.shards:
        shard_results_dir(directory, shard).mkdir(parents=True, exist_ok=True)
        write_json_atomic(
            shard_dir(directory, shard) / "manifest.json",
            {
                "kind": "shard-manifest",
                # Same claim as plan.json: a fault-free dispatch stays
                # readable by pre-fault schema gates end to end.
                "schema": PLAN_SCHEMA_VERSION if plan.faults else 1,
                "plan": plan.fingerprint,
                **shard.to_dict(),
            },
        )
    # The plan file is written last: a directory without plan.json is
    # unambiguously not (yet) a dispatch directory, however far a previous
    # planner got before dying.
    write_json_atomic(existing_path, plan.to_dict(), indent=2)
    return plan


# ---------------------------------------------------------------------- #
# loading
# ---------------------------------------------------------------------- #
def load_plan(directory: str | Path) -> DispatchPlan:
    """Load and verify ``<directory>/plan.json``."""
    path = plan_path(directory)
    if not path.exists():
        raise FileNotFoundError(
            f"{path} not found: not a dispatch directory (run "
            f"`python -m repro.dispatch plan` first)"
        )
    try:
        plan = DispatchPlan.from_dict(json.loads(path.read_text(encoding="utf-8")))
    except (ValueError, KeyError, TypeError) as error:
        raise ValueError(f"{path}: malformed dispatch plan: {error}") from error
    expected = plan.compute_fingerprint()
    if plan.fingerprint != expected:
        raise ValueError(
            f"{path} does not match its own fingerprint "
            f"({plan.fingerprint} != {expected}): the plan was edited or "
            f"corrupted after planning; re-plan into a fresh directory"
        )
    covered = [(shard.start, shard.stop) for shard in plan.shards]
    if covered != _partition(plan.suite_count, len(plan.shards)) or any(
        len(shard.scenario_ids) != shard.stop - shard.start for shard in plan.shards
    ):
        raise ValueError(
            f"{path}: shard slices do not partition the {plan.suite_count}-scenario "
            f"suite; the plan was edited or corrupted after planning"
        )
    return plan


def load_suite(directory: str | Path, plan: DispatchPlan | None = None) -> ScenarioSuite:
    """Load ``<directory>/suite.jsonl``, verified against the plan fingerprint."""
    if plan is None:
        plan = load_plan(directory)
    suite = ScenarioSuite.from_jsonl(suite_path(directory))
    actual = suite_fingerprint(suite)
    if actual != plan.suite_fingerprint:
        raise ValueError(
            f"{suite_path(directory)} does not match the plan "
            f"(suite fingerprint {actual} != {plan.suite_fingerprint}); the "
            f"dispatch directory has been tampered with or mixed up"
        )
    return suite
