"""Merge per-shard campaign outputs back into one result stream.

The merger turns a drained dispatch directory into ``<dir>/merged/`` —
one campaign-result JSONL file per system that is **byte-identical** to what
a single-process ``Campaign.out(dir).run()`` over the same suite would have
written.  That identity is the subsystem's correctness contract (asserted by
the test suite and the CI ``dispatch-smoke`` job), and it holds because:

* missions are deterministic, so a shard's records equal the serial run's
  records for the same (system, scenario, repetition) cells;
* shards are contiguous suite slices, so emitting shard 0..N's records per
  system reproduces the serial submission order; and
* records are re-emitted from the grid, not file order, so duplicated
  appends (a shard finished twice across a lease eviction) collapse.

Every input is verified before a byte is written: shard completion markers,
the campaign context hash of each shard result header (mission config +
platform), and each record's scenario fingerprint against the planned suite.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.campaign import campaign_result_filename
from repro.core.metrics import (
    RESULT_SCHEMA_VERSION,
    CampaignResult,
    RunRecord,
    parse_record_line,
)
from repro.dispatch.planner import (
    DispatchPlan,
    ShardSpec,
    load_plan,
    load_suite,
    merged_dir,
    shard_results_dir,
)
from repro.dispatch.queue import ShardQueue
from repro.jsonl import iter_frame_records, read_frame_header, validate_frame_header


class ShardResultError(ValueError):
    """A shard's persisted output failed merge validation."""


def _shard_records(
    directory: Path,
    plan: DispatchPlan,
    shard: ShardSpec,
    system_name: str,
    expected_fingerprints: dict[str, str],
) -> dict[tuple[str, int], RunRecord]:
    """One shard's validated records for one system, keyed by grid cell."""
    path = shard_results_dir(directory, shard) / campaign_result_filename(system_name)
    if not path.exists():
        raise ShardResultError(
            f"{shard.name} is marked done but {path} is missing"
        )
    header = read_frame_header(path)
    validate_frame_header(path, header, "campaign-result", RESULT_SCHEMA_VERSION)
    if str(header.get("system")) != system_name:
        raise ShardResultError(
            f"{path} holds results for {header.get('system')!r}, not {system_name!r}"
        )
    if header.get("campaign") != plan.context:
        raise ShardResultError(
            f"{path} was flown under a different campaign context "
            f"({header.get('campaign')} != {plan.context}: mission config or "
            f"platform differs from the plan)"
        )
    if header.get("platform") != plan.platform:
        raise ShardResultError(
            f"{path} was flown on platform {header.get('platform')!r}, "
            f"the plan says {plan.platform!r}"
        )
    cells: dict[tuple[str, int], RunRecord] = {}
    expected_ids = set(shard.scenario_ids)
    for record in iter_frame_records(
        path,
        "campaign-result",
        RESULT_SCHEMA_VERSION,
        parse_record_line,
        description="run record",
        skip_header_validation=True,
    ):
        if record.scenario_id not in expected_ids:
            raise ShardResultError(
                f"{path} holds a record for {record.scenario_id!r}, which is "
                f"not in {shard.name}'s scenario slice"
            )
        expected = expected_fingerprints[record.scenario_id]
        if record.scenario_fingerprint and record.scenario_fingerprint != expected:
            raise ShardResultError(
                f"{path}: record for {record.scenario_id!r} rep "
                f"{record.repetition} was flown on different scenario contents "
                f"(fingerprint {record.scenario_fingerprint} != {expected})"
            )
        key = (record.scenario_id, record.repetition)
        previous = cells.get(key)
        if previous is not None and previous.to_dict() != record.to_dict():
            raise ShardResultError(
                f"{path} holds two *different* records for {record.scenario_id!r} "
                f"rep {record.repetition}; the shard was flown twice with "
                f"diverging results — refusing to merge"
            )
        cells[key] = record
    return cells


def merge_dispatch(
    directory: str | Path, out_dir: str | Path | None = None
) -> dict[str, Path]:
    """Merge a drained dispatch directory into per-system JSONL files.

    Returns ``{system name: merged file path}``.  Raises
    :class:`ShardResultError` (a ``ValueError``) when a shard is incomplete
    or its persisted output fails validation.
    """
    directory = Path(directory)
    plan = load_plan(directory)
    suite = load_suite(directory, plan)
    queue = ShardQueue(directory, plan)
    unfinished = [
        shard.name for shard in plan.shards if queue.read_done(shard) is None
    ]
    if unfinished:
        raise ShardResultError(
            f"cannot merge {directory}: shard(s) {', '.join(unfinished)} are "
            f"not done yet (run more workers, or `dispatch status` to inspect)"
        )
    expected_fingerprints = {
        scenario.scenario_id: scenario.fingerprint() for scenario in suite
    }

    out = Path(out_dir) if out_dir is not None else merged_dir(directory)
    out.mkdir(parents=True, exist_ok=True)
    merged: dict[str, Path] = {}
    for system in plan.systems:
        # Exactly the header a single-process Campaign.out() writes for this
        # campaign context — merged files must be byte-identical to it.
        header = {
            "kind": "campaign-result",
            "schema": RESULT_SCHEMA_VERSION,
            "system": system.name,
            "campaign": plan.context,
            "platform": plan.platform,
        }
        path = out / campaign_result_filename(system.name)
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for shard in plan.shards:
                cells = _shard_records(
                    directory, plan, shard, system.name, expected_fingerprints
                )
                # Re-emit from the grid (scenario-major, repetition-minor) —
                # the serial submission order — not from file append order.
                for scenario_id in shard.scenario_ids:
                    for repetition in range(plan.repetitions):
                        record = cells.pop((scenario_id, repetition), None)
                        if record is None:
                            raise ShardResultError(
                                f"{shard.name} is marked done but holds no "
                                f"record for {system.name} / {scenario_id!r} "
                                f"rep {repetition}"
                            )
                        handle.write(
                            json.dumps(record.to_dict(), sort_keys=True) + "\n"
                        )
                if cells:
                    extras = sorted(f"{sid} rep{rep}" for sid, rep in cells)
                    raise ShardResultError(
                        f"{shard.name} holds {len(extras)} record(s) outside "
                        f"the planned grid for {system.name}: {extras[:5]}"
                    )
        tmp.replace(path)
        merged[system.name] = path
    return merged


def load_merged(directory: str | Path) -> dict[str, CampaignResult]:
    """Load a merged dispatch directory as ``{system name: CampaignResult}``.

    The same shape ``Campaign.run()`` returns, in the plan's system order.
    """
    directory = Path(directory)
    plan = load_plan(directory)
    results: dict[str, CampaignResult] = {}
    for system in plan.systems:
        path = merged_dir(directory) / campaign_result_filename(system.name)
        if not path.exists():
            raise FileNotFoundError(
                f"{path} not found: run `python -m repro.dispatch merge` first"
            )
        results[system.name] = CampaignResult.from_jsonl(path)
    return results


def verify_merge(directory: str | Path) -> dict[str, int]:
    """Validate shard outputs without writing: ``{system: record count}``.

    Runs the full merge validation (completion markers, context hashes,
    scenario fingerprints, grid coverage) against a throwaway directory.
    """
    import tempfile

    directory = Path(directory)
    with tempfile.TemporaryDirectory(prefix="repro-dispatch-verify-") as scratch:
        merged = merge_dispatch(directory, out_dir=scratch)
        counts = {
            name: len(CampaignResult.from_jsonl(path)) for name, path in merged.items()
        }
    return counts

