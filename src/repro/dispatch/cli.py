"""Distributed dispatch CLI: ``python -m repro.dispatch``.

Subcommands:

* ``plan`` — split a campaign (suite x systems x repetitions) into
  content-fingerprinted shard manifests under a dispatch directory.
* ``work`` — run one worker against a dispatch directory: claim shards,
  fly them, heartbeat, publish completion.  Start as many as you like, on
  as many machines as share the directory.
* ``status`` — per-shard queue state (pending / running / stale / done).
* ``merge`` — combine the per-shard outputs into ``<dir>/merged/``,
  byte-identical to a single-process run of the same campaign.
* ``run`` — local convenience: plan (if needed) + N worker processes +
  merge, in one command.

Example — three shards, two machines::

    machine-a$ python -m repro.dispatch plan runs/stress \\
                   --preset stress --seed 7 --shards 3 --systems mls-v1,mls-v3
    machine-a$ python -m repro.dispatch work runs/stress
    machine-b$ python -m repro.dispatch work runs/stress      # shared volume
    machine-a$ python -m repro.dispatch merge runs/stress
    machine-a$ python -m repro.analysis summarize runs/stress
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.dispatch.merge import load_merged, merge_dispatch
from repro.dispatch.planner import merged_dir, plan_dispatch
from repro.dispatch.queue import DEFAULT_LEASE_SECONDS, ShardQueue
from repro.dispatch.worker import (
    DEFAULT_POLL_SECONDS,
    run_local_workers,
    run_worker,
)


def _build_suite(args: argparse.Namespace):
    """Resolve the planned suite plus any fault axis it declares."""
    from repro.world.scenario_gen import generate_suite
    from repro.world.scenario_suite import ScenarioSuite
    from repro.world.spec_validation import load_suite_spec

    if args.suite:
        return ScenarioSuite.from_jsonl(args.suite), ()
    if args.spec:
        # Structured validation: every field problem reported at once (a
        # SpecValidationError is a ValueError, so main() exits 2 with the
        # full issue list rather than a traceback).
        spec = load_suite_spec(args.spec)
        suite = generate_suite(
            spec, count=args.count, seed=args.seed, repetitions=args.repetitions
        )
        return suite, tuple(spec.faults)
    suite = generate_suite(
        args.preset, count=args.count, seed=args.seed, repetitions=args.repetitions
    )
    return suite, ()


def _systems(arg: str):
    from repro.core.config import preset

    return [preset(name.strip()) for name in arg.split(",") if name.strip()]


def _add_plan_args(parser: argparse.ArgumentParser) -> None:
    from repro.bench.campaign import PLATFORM_FACTORIES
    from repro.world.scenario_gen import PRESET_NAMES

    parser.add_argument(
        "--preset", default="stress", choices=sorted(PRESET_NAMES),
        help="suite preset to sample from (default: stress)",
    )
    parser.add_argument("--suite", default=None, help="plan over a suite JSONL file instead")
    parser.add_argument(
        "--spec", default=None,
        help="plan over a SuiteSpec JSON file (see SuiteSpec.to_dict) instead",
    )
    parser.add_argument("--seed", type=int, default=None, help="suite master seed")
    parser.add_argument("--count", type=int, default=None, help="number of scenarios")
    parser.add_argument(
        "--repetitions", type=int, default=None, help="repetitions per scenario"
    )
    parser.add_argument(
        "--shards", type=int, required=True,
        help="number of shards to split the campaign into (clamped to the scenario count)",
    )
    parser.add_argument(
        "--systems", default="mls-v1,mls-v2,mls-v3",
        help="comma-separated system presets (default: all three generations)",
    )
    parser.add_argument(
        "--platform", default="desktop", choices=sorted(PLATFORM_FACTORIES),
        help="execution platform key (default: desktop)",
    )
    parser.add_argument(
        "--faults", default=None,
        help="fault axis: a preset name or fault-plan JSON file "
        "(see python -m repro.faults list); overrides any --spec fault axis",
    )


def _plan(args: argparse.Namespace, directory: Path):
    from repro.faults.spec import resolve_faults

    suite, faults = _build_suite(args)
    if args.faults is not None:
        faults = resolve_faults(args.faults)
    return plan_dispatch(
        directory,
        suite,
        _systems(args.systems),
        shards=args.shards,
        repetitions=args.repetitions,
        platform=args.platform,
        faults=faults,
    )


def _cmd_plan(args: argparse.Namespace) -> int:
    plan = _plan(args, Path(args.dir))
    print(
        f"planned {plan.name!r}: {plan.suite_count} scenarios x "
        f"{plan.repetitions} repetition(s) x {len(plan.systems)} system(s) "
        f"= {plan.total_runs} runs over {len(plan.shards)} shard(s)"
    )
    if plan.faults:
        print(
            f"fault axis: {len(plan.faults)} spec(s): "
            + ", ".join(spec.name for spec in plan.faults)
        )
    for shard in plan.shards:
        print(
            f"  {shard.name}: scenarios [{shard.start}, {shard.stop}) "
            f"({plan.runs_per_shard(shard)} runs)  {shard.fingerprint}"
        )
    print(f"plan fingerprint {plan.fingerprint}; workers: "
          f"python -m repro.dispatch work {args.dir}")
    return 0


def _cmd_work(args: argparse.Namespace) -> int:
    report = run_worker(
        args.dir,
        worker_id=args.worker_id,
        lease_seconds=args.lease,
        poll_seconds=args.poll,
        max_shards=args.max_shards,
        wait=not args.no_wait,
        progress=print if args.verbose else None,
    )
    print(
        f"worker {report.worker_id}: completed {len(report.shards_completed)} "
        f"shard(s) ({report.records_flown} records)"
    )
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.bench.tables import format_table

    queue = ShardQueue(args.dir)
    if args.json:
        import json

        print(json.dumps(queue.status_payload(), indent=2, sort_keys=True))
        return 0
    plan = queue.plan
    rows = []
    done = 0
    for status in queue.status():
        shard = status.shard
        done += status.state.value == "done"
        # Lease age against its limit ("12s/60s"), so a wedged worker is
        # visible at a glance; "(stale!)" once the heartbeat has expired.
        if status.heartbeat_age is None:
            age = "-"
        else:
            age = f"{status.heartbeat_age:.0f}s"
            if status.lease_seconds is not None:
                age += f"/{status.lease_seconds:.0f}s"
            if status.stale:
                age += " (stale!)"
        rows.append(
            [
                shard.name,
                f"[{shard.start}, {shard.stop})",
                plan.runs_per_shard(shard),
                status.state.value,
                status.worker or "-",
                age,
                status.records if status.records is not None else "-",
            ]
        )
    print(
        f"{plan.name!r}: {plan.total_runs} runs over {len(plan.shards)} "
        f"shard(s), {done} done"
    )
    print(
        format_table(
            ["Shard", "Scenarios", "Runs", "State", "Worker", "Heartbeat", "Records"],
            rows,
        )
    )
    return 0


def _print_results(directory: Path) -> None:
    from repro.bench.tables import render_outcome_rates

    print(render_outcome_rates(load_merged(directory)))


def _cmd_merge(args: argparse.Namespace) -> int:
    merged = merge_dispatch(args.dir, out_dir=args.out)
    for name, path in merged.items():
        print(f"merged {name}: {path}")
    if args.out is None:
        _print_results(Path(args.dir))
        print(f"analyze with: python -m repro.analysis summarize {args.dir}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    directory = Path(args.dir)
    plan = _plan(args, directory)
    print(
        f"dispatching {plan.total_runs} runs over {len(plan.shards)} shard(s) "
        f"to {args.workers} local worker(s)"
    )
    run_local_workers(directory, workers=args.workers, lease_seconds=args.lease)
    merge_dispatch(directory)
    print(f"merged results under {merged_dir(directory)}")
    _print_results(directory)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dispatch",
        description="Sharded campaign execution across processes and machines.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="split a campaign into shard manifests")
    plan.add_argument("dir", help="dispatch directory (created if missing)")
    _add_plan_args(plan)

    work = sub.add_parser("work", help="run one worker against a dispatch directory")
    work.add_argument("dir", help="a planned dispatch directory")
    work.add_argument("--worker-id", default=None, help="override the generated worker id")
    work.add_argument(
        "--lease", type=float, default=DEFAULT_LEASE_SECONDS,
        help="seconds without a heartbeat before other workers may re-claim "
        "this worker's shard (default: %(default)s)",
    )
    work.add_argument(
        "--poll", type=float, default=DEFAULT_POLL_SECONDS,
        help="re-poll interval while other workers hold every shard",
    )
    work.add_argument(
        "--max-shards", type=int, default=None, help="stop after this many shards"
    )
    work.add_argument(
        "--no-wait", action="store_true",
        help="exit when nothing is claimable instead of polling until the plan finishes",
    )
    work.add_argument("--verbose", action="store_true", help="print per-run progress")

    status = sub.add_parser("status", help="per-shard queue state")
    status.add_argument("dir", help="a planned dispatch directory")
    status.add_argument(
        "--json", action="store_true",
        help="machine-readable output (one JSON object; scripts and the "
        "campaign service consume this)",
    )

    merge = sub.add_parser("merge", help="combine shard outputs into merged/ JSONL")
    merge.add_argument("dir", help="a drained dispatch directory")
    merge.add_argument(
        "--out", default=None,
        help="write merged files here instead of <dir>/merged/",
    )

    run = sub.add_parser("run", help="plan + local workers + merge, in one command")
    run.add_argument("dir", help="dispatch directory (created if missing)")
    _add_plan_args(run)
    run.add_argument(
        "--workers", type=int, default=2, help="local worker processes (default: 2)"
    )
    run.add_argument(
        "--lease", type=float, default=DEFAULT_LEASE_SECONDS,
        help="worker lease seconds (default: %(default)s)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "plan":
            return _cmd_plan(args)
        if args.command == "work":
            return _cmd_work(args)
        if args.command == "status":
            return _cmd_status(args)
        if args.command == "merge":
            return _cmd_merge(args)
        return _cmd_run(args)
    except (FileNotFoundError, ValueError) as error:
        # Unplanned directories, wrong JSONL kinds, unfinished shards,
        # tampered fingerprints: known user-facing failures get a diagnostic
        # and exit 2, not a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
