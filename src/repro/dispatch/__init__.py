"""Distributed campaign dispatch: sharded work-queue execution.

This package turns the single-process campaign runner into a horizontally
scalable execution service built on nothing but a shared directory:

* :mod:`repro.dispatch.planner` — split any campaign into deterministic,
  content-fingerprinted shard manifests;
* :mod:`repro.dispatch.queue` — a filesystem work queue where workers claim
  shards via atomic lease files with heartbeats, so crashed workers' shards
  are re-claimed after their lease expires;
* :mod:`repro.dispatch.worker` — the claim/fly/complete worker loop,
  resuming partially-flown shards through ``Campaign.out`` persistence;
* :mod:`repro.dispatch.merge` — recombine per-shard outputs into per-system
  JSONL byte-identical to a single-process run;
* :mod:`repro.dispatch.cli` — the ``python -m repro.dispatch`` CLI
  (``plan`` / ``work`` / ``status`` / ``merge`` / ``run``).

Fluent entry point: :meth:`repro.Campaign.dispatch`.
"""

from repro.dispatch.merge import ShardResultError, load_merged, merge_dispatch, verify_merge
from repro.dispatch.planner import (
    DispatchPlan,
    ShardSpec,
    build_plan,
    load_plan,
    load_suite,
    plan_dispatch,
    suite_fingerprint,
)
from repro.dispatch.queue import (
    DEFAULT_LEASE_SECONDS,
    LeaseLostError,
    ShardLease,
    ShardQueue,
    ShardState,
    ShardStatus,
)
from repro.dispatch.worker import WorkerReport, run_local_workers, run_worker

__all__ = [
    "DEFAULT_LEASE_SECONDS",
    "DispatchPlan",
    "LeaseLostError",
    "ShardLease",
    "ShardQueue",
    "ShardResultError",
    "ShardSpec",
    "ShardState",
    "ShardStatus",
    "WorkerReport",
    "build_plan",
    "load_merged",
    "load_plan",
    "load_suite",
    "merge_dispatch",
    "plan_dispatch",
    "run_local_workers",
    "run_worker",
    "suite_fingerprint",
    "verify_merge",
]
