"""Erroneous point-cloud characterisation (the Fig. 5c effect).

In the field tests, GPS drift and rain produced point clouds containing
phantom returns and systematically shifted geometry, which degraded the map
and "occasionally prevent[ed] valid path generation".  This module measures
how many of a depth capture's points are wrong (spurious or displaced by more
than the map resolution) under given conditions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Pose, Vec3
from repro.sensors.depth import DepthCamera
from repro.world.world import World


@dataclass(frozen=True)
class PointCloudFaultReport:
    """Summary of a point-cloud fault characterisation."""

    captures: int
    total_points: int
    displaced_points: int
    mean_displacement: float
    max_displacement: float

    @property
    def displaced_fraction(self) -> float:
        if self.total_points == 0:
            return 0.0
        return self.displaced_points / self.total_points


def characterise_point_cloud_faults(
    world: World,
    sensor_pose: Pose,
    estimated_position_error: Vec3,
    captures: int = 10,
    displacement_threshold: float = 0.5,
    seed: int = 0,
) -> PointCloudFaultReport:
    """Capture repeatedly with a known state-estimation error and score the clouds.

    Args:
        world: the world (its weather drives rain speckle and dropouts).
        sensor_pose: true sensor pose during the captures.
        estimated_position_error: the EKF error (e.g. the current GPS drift);
            every returned point is displaced by this amount, exactly as the
            mapping module experiences it.
        captures: how many clouds to accumulate.
        displacement_threshold: points displaced further than this (metres)
            from their true surface count as erroneous.
        seed: RNG seed.
    """
    if captures <= 0:
        raise ValueError("captures must be positive")
    camera = DepthCamera(facing="forward", seed=seed)
    estimated_pose = Pose(
        sensor_pose.position + estimated_position_error, sensor_pose.orientation
    )
    total = 0
    displaced = 0
    displacements: list[float] = []
    for index in range(captures):
        cloud = camera.capture(
            world, sensor_pose, estimated_pose=estimated_pose, timestamp=float(index)
        )
        for point in cloud.points:
            total += 1
            true_surface_distance = _distance_to_nearest_surface(world, point)
            displacements.append(true_surface_distance)
            if true_surface_distance > displacement_threshold:
                displaced += 1
    return PointCloudFaultReport(
        captures=captures,
        total_points=total,
        displaced_points=displaced,
        mean_displacement=sum(displacements) / len(displacements) if displacements else 0.0,
        max_displacement=max(displacements, default=0.0),
    )


def _distance_to_nearest_surface(world: World, point: Vec3) -> float:
    """Distance from a mapped point to the nearest true obstacle *surface* or ground.

    A point inside a solid obstacle is just as wrong as one floating in free
    space, so for interior points the penetration depth to the nearest face is
    used rather than zero.
    """
    best = abs(point.z - world.ground_altitude)
    for obstacle in world.collision_obstacles():
        bounds = obstacle.bounds
        if bounds.contains(point):
            depth = min(
                point.x - bounds.minimum.x,
                bounds.maximum.x - point.x,
                point.y - bounds.minimum.y,
                bounds.maximum.y - point.y,
                point.z - bounds.minimum.z,
                bounds.maximum.z - point.z,
            )
            best = min(best, depth)
        else:
            best = min(best, bounds.distance_to_point(point))
    return best
