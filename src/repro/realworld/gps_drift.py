"""GPS-drift characterisation (the Fig. 5d effect).

The paper observed position drift in poor weather even though the receiver's
self-reported HDOP/VDOP stayed within 2-8.  This module runs the GPS model
open-loop over a stationary period and reports the drift statistics, which
the real-world bench uses to show the effect and which the tests use to pin
the model's behaviour (drift grows with degradation, DOP stays in band).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Vec3
from repro.sensors.gps import GpsSensor
from repro.world.weather import Weather


@dataclass(frozen=True)
class GpsDriftReport:
    """Summary of an open-loop GPS characterisation run."""

    duration: float
    sample_count: int
    mean_error: float
    max_error: float
    final_drift: float
    mean_hdop: float
    mean_vdop: float
    all_dop_in_band: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GPS drift over {self.duration:.0f}s: mean error {self.mean_error:.2f} m, "
            f"max {self.max_error:.2f} m, HDOP {self.mean_hdop:.1f}, VDOP {self.mean_vdop:.1f}"
        )


def characterise_gps_drift(
    weather: Weather,
    duration: float = 120.0,
    rate_hz: float = 5.0,
    true_position: Vec3 = Vec3.zero(),
    seed: int = 0,
) -> GpsDriftReport:
    """Hold the receiver stationary and record its reported positions.

    Args:
        weather: weather driving the degradation (use a STORM/RAIN preset to
            reproduce the field conditions).
        duration: characterisation length in seconds.
        rate_hz: GPS update rate.
        true_position: the stationary antenna position.
        seed: RNG seed.
    """
    if duration <= 0 or rate_hz <= 0:
        raise ValueError("duration and rate must be positive")
    gps = GpsSensor(seed=seed)
    dt = 1.0 / rate_hz
    time = 0.0
    errors: list[float] = []
    hdops: list[float] = []
    vdops: list[float] = []
    in_band = True
    while time < duration:
        time += dt
        fix = gps.measure(true_position, weather, time)
        errors.append(fix.position.distance_to(true_position))
        hdops.append(fix.hdop)
        vdops.append(fix.vdop)
        if not (fix.hdop <= 8.0 and fix.vdop <= 8.0):
            in_band = False
    return GpsDriftReport(
        duration=duration,
        sample_count=len(errors),
        mean_error=sum(errors) / len(errors),
        max_error=max(errors),
        final_drift=gps.current_drift.norm(),
        mean_hdop=sum(hdops) / len(hdops),
        mean_vdop=sum(vdops) / len(vdops),
        all_dop_in_band=in_band,
    )
