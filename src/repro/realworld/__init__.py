"""Real-world (field test) substrate.

The paper's RQ3 experiments fly the real drone: an F450 frame, Jetson Nano,
Pixhawk 2.4.8 (later upgraded to a Cuav X7+ Pro), Realsense depth cameras,
NEO-3 GPS and a TFMini rangefinder.  The effects that separate the field
results from HIL are modelled here:

* :mod:`repro.realworld.hardware` — flight-controller / IMU quality profiles
  (Pixhawk 2.4.8 vs Cuav X7+).
* :mod:`repro.realworld.gps_drift` — standalone GPS-drift characterisation
  (the Fig. 5d effect) used by the analysis benches.
* :mod:`repro.realworld.sensor_faults` — erroneous point-cloud
  characterisation (the Fig. 5c effect).
* :mod:`repro.realworld.field_test` — the field-test campaign wrapper: takes
  a SIL scenario, degrades GNSS conditions, adds wind during the final
  descent, runs on the real-world Jetson profile (live camera I/O) and the
  selected flight controller.
"""

from repro.realworld.hardware import FlightControllerProfile, PIXHAWK_2_4_8, CUAV_X7_PRO
from repro.realworld.gps_drift import GpsDriftReport, characterise_gps_drift
from repro.realworld.sensor_faults import PointCloudFaultReport, characterise_point_cloud_faults
from repro.realworld.field_test import FieldTestConfig, build_field_world, run_field_scenario

__all__ = [
    "FlightControllerProfile",
    "PIXHAWK_2_4_8",
    "CUAV_X7_PRO",
    "GpsDriftReport",
    "characterise_gps_drift",
    "PointCloudFaultReport",
    "characterise_point_cloud_faults",
    "FieldTestConfig",
    "build_field_world",
    "run_field_scenario",
]
