"""Field-test (RQ3) campaign wrapper.

"For real-world testing, scenarios were simplified to fit within the limited
airspace available" (§IV.C.3): shorter transits, the MLS-V3 system only, and
the environmental effects that the paper reports — GPS drift in poor weather,
wind during the final descent, heavier CPU/RAM load from live camera feeds,
and the flight-controller IMU quality (Pixhawk 2.4.8 before the upgrade,
Cuav X7+ after).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import LandingSystemConfig, mls_v3
from repro.core.metrics import RunRecord
from repro.core.mission import MissionConfig, MissionRunner
from repro.geometry import Vec3
from repro.hil.jetson import JetsonNanoPlatform, JetsonNanoSpec
from repro.realworld.hardware import CUAV_X7_PRO, FlightControllerProfile
from repro.vehicle.autopilot import AutopilotConfig
from repro.world.scenario import Scenario
from repro.world.weather import Weather, WeatherCondition
from repro.world.world import World


@dataclass(frozen=True)
class FieldTestConfig:
    """Configuration of a real-world test flight."""

    flight_controller: FlightControllerProfile = CUAV_X7_PRO
    minimum_gps_degradation: float = 0.45
    minimum_wind_speed: float = 3.0
    minimum_gust_intensity: float = 0.35
    max_target_distance: float = 25.0
    jetson_spec: JetsonNanoSpec = field(default_factory=JetsonNanoSpec.real_world)


def _degrade_weather(weather: Weather, config: FieldTestConfig) -> Weather:
    """Apply the field conditions: GNSS degradation and wind always present."""
    condition = weather.condition
    if not condition.is_adverse:
        condition = WeatherCondition.WIND
    return Weather(
        condition=condition,
        visibility=weather.visibility,
        glare=weather.glare,
        image_noise=max(weather.image_noise, 0.02),
        wind_speed=max(weather.wind_speed, config.minimum_wind_speed),
        gust_intensity=max(weather.gust_intensity, config.minimum_gust_intensity),
        gps_degradation=max(weather.gps_degradation, config.minimum_gps_degradation),
        precipitation=weather.precipitation,
    )


def simplify_scenario(scenario: Scenario, config: FieldTestConfig) -> Scenario:
    """Shrink a SIL scenario to fit the limited field-test airspace."""
    distance = scenario.marker_position.horizontal_norm()
    if distance <= config.max_target_distance or distance < 1e-9:
        marker_position = scenario.marker_position
        gps_target = scenario.gps_target
    else:
        scale = config.max_target_distance / distance
        marker_position = Vec3(
            scenario.marker_position.x * scale, scenario.marker_position.y * scale, 0.0
        )
        gps_offset = scenario.gps_target - scenario.marker_position
        gps_target = marker_position + gps_offset
    return replace(
        scenario,
        marker_position=marker_position,
        gps_target=gps_target,
        weather=_degrade_weather(scenario.weather, config),
        decoy_count=min(scenario.decoy_count, 1),
    )


def build_field_world(scenario: Scenario, config: FieldTestConfig | None = None) -> World:
    """The world for a simplified field scenario (degraded weather applied)."""
    config = config or FieldTestConfig()
    return simplify_scenario(scenario, config).build_world()


def run_field_scenario(
    scenario: Scenario,
    system_config: LandingSystemConfig | None = None,
    config: FieldTestConfig | None = None,
    mission_config: MissionConfig | None = None,
    detector_network=None,
) -> RunRecord:
    """Run one real-world test flight and return its record.

    Only MLS-V3 was flown in the field ("Due to safety concerns, MLS-V1 and
    MLS-V2 were not tested"); passing a different ``system_config`` is allowed
    for ablation purposes but defaults to V3.
    """
    config = config or FieldTestConfig()
    system_config = system_config or mls_v3()
    field_scenario = simplify_scenario(scenario, config)

    autopilot_config = AutopilotConfig(
        imu_quality=config.flight_controller.effective_imu_quality,
    )

    platform = JetsonNanoPlatform(spec=config.jetson_spec, seed=scenario.seed)
    runner = MissionRunner(
        field_scenario,
        system_config,
        mission_config=mission_config,
        platform=platform,
        detector_network=detector_network,
        autopilot_config=autopilot_config,
    )
    platform._map_memory_provider = runner.system.map_memory_bytes
    return runner.run()
