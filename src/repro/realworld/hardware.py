"""Flight-controller hardware profiles.

"Another issue was poor local positioning due to low-quality acceleration and
rotational data, which was addressed by upgrading from Pixhawk 2.4.8 to the
Cuav X7+ flight controller, featuring triple IMUs, dual barometers, and
improved sensors." (§V.C)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sensors.imu import ImuQuality


@dataclass(frozen=True)
class FlightControllerProfile:
    """Sensor quality and redundancy of a flight-controller board."""

    name: str
    imu_quality: ImuQuality
    imu_count: int
    barometer_count: int
    gps_noise_multiplier: float = 1.0
    baro_noise_std: float = 0.08

    @property
    def effective_imu_quality(self) -> ImuQuality:
        """Noise reduction from averaging redundant IMUs (1/sqrt(n))."""
        factor = 1.0 / (self.imu_count**0.5)
        q = self.imu_quality
        return ImuQuality(
            accel_noise_std=q.accel_noise_std * factor,
            gyro_noise_std=q.gyro_noise_std * factor,
            accel_bias_instability=q.accel_bias_instability * factor,
            gyro_bias_instability=q.gyro_bias_instability * factor,
        )


#: The board the platform started with.
PIXHAWK_2_4_8 = FlightControllerProfile(
    name="Pixhawk 2.4.8",
    imu_quality=ImuQuality.consumer_grade(),
    imu_count=1,
    barometer_count=1,
    gps_noise_multiplier=1.2,
    baro_noise_std=0.12,
)

#: The upgraded board.
CUAV_X7_PRO = FlightControllerProfile(
    name="Cuav X7+ Pro",
    imu_quality=ImuQuality.industrial_grade(),
    imu_count=3,
    barometer_count=2,
    gps_noise_multiplier=1.0,
    baro_noise_std=0.06,
)
