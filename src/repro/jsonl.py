"""Shared framing for the repo's JSON-Lines file formats.

Both persisted formats — scenario suites and campaign results — are one
header object followed by one payload object per line.  This module owns the
framing rules (blank-line filtering, empty-file and wrong-kind errors,
schema-version gating) so the two readers cannot drift; payload parsing
stays with the owning module.

Deliberately import-free of the rest of the package: it is imported from
both :mod:`repro.core.metrics` and :mod:`repro.world.scenario_suite`.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import warnings
from pathlib import Path
from typing import Any, Callable, Iterator, TypeVar

T = TypeVar("T")


def sha16_of_json(payload: Any) -> str:
    """16-hex-char sha256 of a payload's canonical JSON encoding.

    The one content-hash helper behind every fingerprint in the repo —
    campaign contexts, dispatch plans/shards, fault specs — so the canonical
    encoding (sorted keys, compact separators) can never drift between the
    subsystems that cross-check each other's hashes.
    """
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()[:16]


def validate_frame_header(
    path: str | Path, header: dict[str, Any], expected_kind: str, max_schema: int
) -> None:
    """Enforce the kind/schema gate on an already-parsed header object.

    Shared by the materialising reader below and the streaming reader in
    :mod:`repro.analysis.io`, so the gating rules cannot drift between them.
    Raises ``ValueError`` when the header is of a different kind or declares
    a schema version newer than ``max_schema`` (old readers fail loudly
    instead of misparsing future records).
    """
    if header.get("kind") != expected_kind:
        raise ValueError(
            f"{path} is not a {expected_kind} JSONL file (kind={header.get('kind')!r})"
        )
    schema = int(header.get("schema", 1))
    if schema > max_schema:
        raise ValueError(
            f"{path} uses {expected_kind} schema {schema}, but this version "
            f"reads at most schema {max_schema}; upgrade to read it"
        )


def read_jsonl_frame(
    path: str | Path, expected_kind: str, max_schema: int
) -> tuple[dict[str, Any], list[str]]:
    """Read a JSONL file's header and raw payload lines.

    Raises ``ValueError`` when the file is empty or fails
    :func:`validate_frame_header`.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        lines = [line for line in handle if line.strip()]
    if not lines:
        raise ValueError(f"{path} is empty")
    header = json.loads(lines[0])
    validate_frame_header(path, header, expected_kind, max_schema)
    return header, lines[1:]


def read_frame_header(path: str | Path) -> dict[str, Any]:
    """The header object of a framed JSONL file (first non-blank line only)."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                return json.loads(line)
    raise ValueError(f"{path} is empty")


def iter_frame_records(
    path: str | Path,
    expected_kind: str,
    max_schema: int,
    parse: Callable[[str], T],
    *,
    description: str = "record",
    skip_header_validation: bool = False,
    on_torn_tail: Callable[[Exception], None] | None = None,
) -> Iterator[T]:
    """Yield ``parse(line)`` for each payload line, one at a time.

    This is the one torn-tail-tolerant line-stream reader shared by
    :func:`repro.core.metrics.read_campaign_jsonl`,
    :func:`repro.analysis.io.iter_result_records` and the shard merger
    (:mod:`repro.dispatch.merge`): a malformed *final* line — the leftover of
    a process killed mid-append — is dropped with a warning (and reported to
    ``on_torn_tail`` when given), while a malformed line anywhere earlier
    raises.  The look-ahead works by holding each parse failure until the
    next non-blank line proves it was not the tail.

    ``skip_header_validation=True`` skips re-parsing the header line for
    callers that already read it (the header is still consumed, never
    yielded); ``parse`` failures are recognised as ``ValueError`` /
    ``KeyError`` / ``TypeError``.
    """
    path = Path(path)
    pending_error: Exception | None = None
    pending_line = ""
    pending_lineno = 0
    with path.open("r", encoding="utf-8") as handle:
        header_seen = False
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            if not header_seen:
                if not skip_header_validation:
                    validate_frame_header(path, json.loads(line), expected_kind, max_schema)
                header_seen = True
                continue
            if pending_error is not None:
                raise ValueError(
                    f"{path}:{pending_lineno}: malformed {description} "
                    f"{pending_line!r}: {pending_error}"
                ) from pending_error
            try:
                yield parse(line)
            except (ValueError, KeyError, TypeError) as error:
                pending_error = error
                pending_line = line.strip()[:80]
                pending_lineno = lineno
        if not header_seen:
            raise ValueError(f"{path} is empty")
    if pending_error is not None:
        warnings.warn(
            f"dropping torn trailing record in {path} "
            f"(campaign killed mid-append?): {pending_error}",
            RuntimeWarning,
            stacklevel=2,
        )
        if on_torn_tail is not None:
            on_torn_tail(pending_error)


def read_frame_page(
    path: str | Path,
    expected_kind: str,
    max_schema: int,
    parse: Callable[[str], T],
    *,
    offset: int = 0,
    limit: int | None = None,
    description: str = "record",
) -> tuple[dict[str, Any], list[T], int]:
    """One page of a framed JSONL file: ``(header, records, total)``.

    The pagination primitive behind the campaign service's
    ``GET /jobs/{id}/records`` endpoint: streams the file once, parses only
    the ``[offset, offset + limit)`` slice of its records, and counts the
    rest, so paging through a large campaign never materialises it.  Torn
    trailing records are dropped (the :func:`iter_frame_records` policy) and
    are not counted in ``total``; an ``offset`` at or past the end yields an
    empty page with the true total.
    """
    if offset < 0:
        raise ValueError(f"offset must be non-negative, got {offset}")
    if limit is not None and limit < 0:
        raise ValueError(f"limit must be non-negative, got {limit}")
    header = read_frame_header(path)
    validate_frame_header(path, header, expected_kind, max_schema)
    stop = None if limit is None else offset + limit
    page: list[T] = []
    total = 0
    counter = itertools.count()

    def parse_in_window(line: str) -> T | None:
        index = next(counter)
        # Parse every line (a malformed line must still be recognised as the
        # torn tail wherever it falls), but keep only the requested window.
        parsed = parse(line)
        if index >= offset and (stop is None or index < stop):
            return parsed
        return None

    for item in iter_frame_records(
        path,
        expected_kind,
        max_schema,
        parse_in_window,
        description=description,
        skip_header_validation=True,
    ):
        total += 1
        if item is not None:
            page.append(item)
    return header, page, total
