"""Shared framing for the repo's JSON-Lines file formats.

Both persisted formats — scenario suites and campaign results — are one
header object followed by one payload object per line.  This module owns the
framing rules (blank-line filtering, empty-file and wrong-kind errors,
schema-version gating) so the two readers cannot drift; payload parsing
stays with the owning module.

Deliberately import-free of the rest of the package: it is imported from
both :mod:`repro.core.metrics` and :mod:`repro.world.scenario_suite`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any


def validate_frame_header(
    path: str | Path, header: dict[str, Any], expected_kind: str, max_schema: int
) -> None:
    """Enforce the kind/schema gate on an already-parsed header object.

    Shared by the materialising reader below and the streaming reader in
    :mod:`repro.analysis.io`, so the gating rules cannot drift between them.
    Raises ``ValueError`` when the header is of a different kind or declares
    a schema version newer than ``max_schema`` (old readers fail loudly
    instead of misparsing future records).
    """
    if header.get("kind") != expected_kind:
        raise ValueError(
            f"{path} is not a {expected_kind} JSONL file (kind={header.get('kind')!r})"
        )
    schema = int(header.get("schema", 1))
    if schema > max_schema:
        raise ValueError(
            f"{path} uses {expected_kind} schema {schema}, but this version "
            f"reads at most schema {max_schema}; upgrade to read it"
        )


def read_jsonl_frame(
    path: str | Path, expected_kind: str, max_schema: int
) -> tuple[dict[str, Any], list[str]]:
    """Read a JSONL file's header and raw payload lines.

    Raises ``ValueError`` when the file is empty or fails
    :func:`validate_frame_header`.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        lines = [line for line in handle if line.strip()]
    if not lines:
        raise ValueError(f"{path} is empty")
    header = json.loads(lines[0])
    validate_frame_header(path, header, expected_kind, max_schema)
    return header, lines[1:]
