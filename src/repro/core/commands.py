"""Commands the landing system issues to the flight stack."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.geometry import Vec3


class CommandKind(enum.Enum):
    """What the decision-making module wants the autopilot to do."""

    NONE = "none"                # hold / keep current setpoint
    SETPOINT = "setpoint"        # offboard position setpoint
    LAND = "land"                # descend and touch down in place
    RETURN = "return"            # failsafe: return to home


@dataclass(frozen=True)
class Command:
    """One decision-tick output."""

    kind: CommandKind
    setpoint: Vec3 | None = None
    yaw: float | None = None
    speed_limit: float | None = None

    @staticmethod
    def none() -> "Command":
        return Command(CommandKind.NONE)

    @staticmethod
    def setpoint_at(position: Vec3, yaw: float | None = None, speed_limit: float | None = None) -> "Command":
        return Command(CommandKind.SETPOINT, setpoint=position, yaw=yaw, speed_limit=speed_limit)

    @staticmethod
    def land() -> "Command":
        return Command(CommandKind.LAND)

    @staticmethod
    def return_home() -> "Command":
        return Command(CommandKind.RETURN)
