"""The autonomous landing system (the paper's primary contribution).

* :mod:`repro.core.config` — system configuration and the three generation
  presets (MLS-V1, MLS-V2, MLS-V3).
* :mod:`repro.core.states` — the decision-making state machine states and
  transition records (Fig. 2).
* :mod:`repro.core.landing_system` — the multi-module landing system that
  wires detector + mapper + planner + validation together and produces
  autopilot commands each decision tick.
* :mod:`repro.core.mission` — the mission runner that executes one scenario
  end-to-end (SIL by default; HIL and real-world effects plug in on top).
* :mod:`repro.core.metrics` — run records and campaign aggregation into the
  paper's tables.
"""

from repro.core.config import (
    LandingSystemConfig,
    SystemGeneration,
    ablation_grid,
    mls_v1,
    mls_v2,
    mls_v3,
)
from repro.core.registry import (
    REGISTRY,
    ComponentContext,
    ComponentError,
    ComponentRegistry,
    ComponentSpec,
    MappingStack,
    register_detector,
    register_mapper,
    register_planner,
)
from repro.core.states import DecisionState, FailsafeAction, StateTransition
from repro.core.landing_system import LandingSystem
from repro.core.metrics import RunOutcome, RunRecord, CampaignResult
from repro.core.mission import MissionConfig, MissionRunner, run_scenario

__all__ = [
    "LandingSystemConfig",
    "SystemGeneration",
    "ablation_grid",
    "mls_v1",
    "mls_v2",
    "mls_v3",
    "REGISTRY",
    "ComponentContext",
    "ComponentError",
    "ComponentRegistry",
    "ComponentSpec",
    "MappingStack",
    "register_detector",
    "register_mapper",
    "register_planner",
    "DecisionState",
    "FailsafeAction",
    "StateTransition",
    "LandingSystem",
    "RunOutcome",
    "RunRecord",
    "CampaignResult",
    "MissionConfig",
    "MissionRunner",
    "run_scenario",
]
