"""The multi-module autonomous landing system.

:class:`LandingSystem` wires the configured marker detector, occupancy map,
path planner and validation gate behind the decision-making state machine of
Fig. 2.  The mission runner calls three methods each decision tick:

* :meth:`process_frame` — run marker detection on the latest camera frame;
* :meth:`process_cloud` — fuse the latest depth cloud into the occupancy map;
* :meth:`decide` — advance the state machine and return a flight command.

The class never touches ground truth: it sees only sensor products and the
state estimate, so every failure the campaign produces emerges from module
behaviour, not from scripted outcomes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.commands import Command
from repro.core.config import (
    DetectorKind,
    LandingSystemConfig,
    MapperKind,
    PlannerKind,
)
from repro.core.registry import (
    DETECTOR,
    MAPPER,
    PLANNER,
    REGISTRY,
    ComponentContext,
    MappingStack,
)
from repro.core.states import DecisionState, FailsafeAction, StateTransition
from repro.geometry import Vec3
from repro.mapping.inflation import InflatedMap
from repro.mapping.octomap import OcTree
from repro.mapping.voxel_grid import VoxelGrid
from repro.perception.detection import Detection, DetectionFrame
from repro.perception.validation import ValidationGate, ValidationResult
from repro.planning.spiral import spiral_search_waypoints
from repro.planning.trajectory import Trajectory, TrajectoryFollower, shortcut_smooth
from repro.planning.types import PlanningProblem
from repro.sensors.camera import CameraFrame
from repro.sensors.depth import PointCloud
from repro.vehicle.state import EstimatedState


@dataclass
class ModuleTimings:
    """Nominal compute cost (seconds of desktop CPU/GPU) of the last tick.

    The HIL resource model scales these to Jetson-Nano-class hardware; the
    SIL campaign ignores them.
    """

    detection: float = 0.0
    mapping: float = 0.0
    planning: float = 0.0

    @property
    def total(self) -> float:
        return self.detection + self.mapping + self.planning


def _builtin_latency_table() -> dict:
    """Back-compat view of the built-in latencies, keyed by the old enums.

    The declarations themselves now live on the component registry
    (:mod:`repro.core.registry`): each registered component carries its own
    nominal desktop-class latency, so custom components automatically get a
    cost model.  The relative costs matter more than the absolute values: the
    learned detector is heavier than the classical one, octree fusion is
    heavier than grid fusion, and RRT* is heavier than bounded local A*.
    """
    table = {}
    for kind, enum_type in ((DETECTOR, DetectorKind), (MAPPER, MapperKind), (PLANNER, PlannerKind)):
        for member in enum_type:
            table[member] = REGISTRY.nominal_latency(kind, member)
    return table


#: Deprecated alias: read latencies from ``REGISTRY.nominal_latency`` instead.
NOMINAL_LATENCY = _builtin_latency_table()


class LandingSystem:
    """One generation of the marker-based autonomous landing system.

    Args:
        config: generation preset (see :mod:`repro.core.config`).
        target_marker_id: the briefed landing-pad ID.
        gps_target: initial GPS estimate of the landing site.
        home: take-off / return-home position.
        seed: seed for the planner's sampling.
        detector_network: optional pre-trained network shared across runs
            (avoids retraining the learned detector for every scenario).
    """

    def __init__(
        self,
        config: LandingSystemConfig,
        target_marker_id: int,
        gps_target: Vec3,
        home: Vec3 = Vec3.zero(),
        seed: int = 0,
        detector_network=None,
    ) -> None:
        self.config = config
        self.target_marker_id = target_marker_id
        self.gps_target = gps_target
        self.home = home

        # --- component composition (via the pluggable registry) ----------
        context = ComponentContext(config=config, seed=seed, detector_network=detector_network)
        self._detector_spec = REGISTRY.spec(DETECTOR, config.detector)
        self._mapper_spec = REGISTRY.spec(MAPPER, config.mapper)
        self._planner_spec = REGISTRY.spec(PLANNER, config.planner)

        # perception
        self.detector = self._detector_spec.build(context)

        # mapping: the mapper component builds the full occupancy stack
        stack = self._mapper_spec.build(context)
        if not isinstance(stack, MappingStack):
            stack = MappingStack(primary=stack, inflated=getattr(stack, "inflated", None))
        self.mapping: MappingStack = stack
        self.local_grid: VoxelGrid | None = stack.local_grid
        self.octree: OcTree | None = stack.octree
        self.inflated: InflatedMap | None = stack.inflated

        # planning: the planner factory sees the built mapping stack
        context.mapping = stack
        self.planner = self._planner_spec.build(context)
        # Planners that maintain their own inflated view (e.g. the EGO local
        # planner) expose it; adopt it so safety checks and the corridor test
        # use the same map the planner plans against.
        planner_inflated = getattr(self.planner, "inflated", None)
        if planner_inflated is not None:
            self.inflated = planner_inflated
            stack.inflated = planner_inflated

        # --- validation ---------------------------------------------------
        proposes_unidentified = bool(
            self._detector_spec.metadata.get("proposes_unidentified", False)
        )
        self._accept_unidentified = proposes_unidentified
        self.validation_gate = ValidationGate(
            target_marker_id=target_marker_id,
            required_frames=config.validation.required_frames,
            required_hits=config.validation.required_hits,
            position_consistency_radius=config.validation.position_consistency_radius,
            accept_unidentified=proposes_unidentified,
        )

        # --- state ---------------------------------------------------------
        self.state = DecisionState.TRANSIT
        self.transitions: list[StateTransition] = []
        self.last_timings = ModuleTimings()
        self.failsafe_action: FailsafeAction | None = None

        self._follower: TrajectoryFollower | None = None
        self._trajectory_goal: Vec3 | None = None
        self._search_waypoints: list[Vec3] = []
        self._search_index = 0
        self._search_started_at: float | None = None
        self._candidate_position: Vec3 | None = None
        self._rejected_candidates: list[Vec3] = []
        self._validated_position: Vec3 | None = None
        self._validation_attempts = 0
        self._landing_attempts = 0
        self._last_detection: Detection | None = None
        self._last_detection_time: float = -math.inf
        self._last_frame: DetectionFrame | None = None
        self._descent_target_altitude: float | None = None
        self._last_replan_time: float = -math.inf

        # --- counters used by the metrics/failure analysis ------------------
        self.planner_failures = 0
        self.planner_fallbacks = 0
        self.aborts = 0
        self.replans = 0

    # ------------------------------------------------------------------ #
    # module entry points
    # ------------------------------------------------------------------ #
    def process_frame(self, frame: CameraFrame) -> DetectionFrame:
        """Run marker detection on a camera frame and cache the result."""
        result = self.detector.detect(frame)
        self.last_timings.detection = self._detector_spec.nominal_latency
        self._last_frame = result
        best = self._best_candidate(result)
        if best is not None:
            self._last_detection = best
            self._last_detection_time = frame.timestamp
        return result

    def process_skipped_frame(self, timestamp: float) -> DetectionFrame:
        """Account for a decision tick whose camera frame was provably blank.

        The mission fast path elides rendering and detection on frames that
        cannot contain a marker or obstacle pixel (see
        ``MissionRunner._frame_provably_blank``).  The bookkeeping matches
        :meth:`process_frame` on an empty detection result exactly: the
        nominal detection cost is still charged — the real detector would
        still scan the blank frame — and the cached last frame advances, so
        downstream state (validation, candidate latching) is byte-identical
        to having run the detector.
        """
        result = DetectionFrame(timestamp=timestamp)
        self.last_timings.detection = self._detector_spec.nominal_latency
        self._last_frame = result
        return result

    @property
    def frame_elision_safe(self) -> bool:
        """Whether the configured detector is declared silent on blank frames.

        Read from the registry metadata flag ``blank_frame_silent``; custom
        detectors default to False, which disables the mission fast path for
        them.
        """
        return bool(self._detector_spec.metadata.get("blank_frame_silent", False))

    def process_cloud(self, cloud: PointCloud, estimate: EstimatedState) -> None:
        """Fuse a depth point cloud into the configured occupancy map."""
        integrated = False
        if self.local_grid is not None:
            self.local_grid.recenter(estimate.position)
            self.local_grid.integrate_cloud(cloud)
            integrated = True
        if self.octree is not None:
            self.octree.integrate_cloud(cloud)
            integrated = True
        if not integrated:
            # Custom mappers without the built-in representations can expose
            # ``integrate_cloud`` on their primary map object.
            primary = self.mapping.primary
            if primary is not None and hasattr(primary, "integrate_cloud"):
                primary.integrate_cloud(cloud)
                integrated = True
        if integrated:
            self.last_timings.mapping = self._mapper_spec.nominal_latency

    # ------------------------------------------------------------------ #
    # decision tick
    # ------------------------------------------------------------------ #
    def decide(self, estimate: EstimatedState, now: float, allow_replan: bool = True) -> Command:
        """Advance the state machine one tick and return a flight command.

        Args:
            estimate: the EKF state estimate.
            now: simulation time, seconds.
            allow_replan: the HIL scheduler clears this flag on ticks where
                the platform missed its deadline, which postpones safety
                replanning exactly as the overloaded Jetson did (§V.B).
        """
        self.last_timings.planning = 0.0
        handler = {
            DecisionState.TRANSIT: self._tick_transit,
            DecisionState.SEARCH: self._tick_search,
            DecisionState.VALIDATE: self._tick_validate,
            DecisionState.LANDING: self._tick_landing,
            DecisionState.FINAL_DESCENT: self._tick_final_descent,
            DecisionState.LANDED: lambda e, t, r: Command.none(),
            DecisionState.FAILSAFE: self._tick_failsafe,
        }[self.state]
        return handler(estimate, now, allow_replan)

    # ------------------------------------------------------------------ #
    # state handlers
    # ------------------------------------------------------------------ #
    def _tick_transit(self, estimate: EstimatedState, now: float, allow_replan: bool) -> Command:
        goal = self.gps_target.with_z(self.config.cruise_altitude)
        if estimate.position.horizontal_distance_to(self.gps_target) < 3.0:
            self._transition(DecisionState.SEARCH, now, "arrived at GPS estimate of the landing site")
            self._begin_search(estimate, now)
            return Command.none()

        command = self._follow_towards(goal, estimate, now, allow_replan)
        # A marker sighting during transit short-circuits straight to validation.
        if self._recent_detection(now, max_age=1.0) is not None and estimate.position.horizontal_distance_to(
            self.gps_target
        ) < self.config.search.spiral_radius:
            self._candidate_position = self._last_detection.world_position
            self._transition(DecisionState.VALIDATE, now, "marker sighted during transit")
            self._begin_validation()
        return command

    def _begin_search(self, estimate: EstimatedState, now: float) -> None:
        cfg = self.config.search
        self._search_waypoints = spiral_search_waypoints(
            self.gps_target,
            altitude=cfg.search_altitude,
            max_radius=cfg.spiral_radius,
            spacing=cfg.spiral_spacing,
        )
        self._search_index = 0
        self._search_started_at = now
        self._follower = None
        self._trajectory_goal = None

    def _tick_search(self, estimate: EstimatedState, now: float, allow_replan: bool) -> Command:
        cfg = self.config.search
        if self._search_started_at is None:
            self._begin_search(estimate, now)

        detection = self._recent_detection(now, max_age=0.8)
        if detection is not None:
            self._candidate_position = detection.world_position
            self._transition(DecisionState.VALIDATE, now, "candidate marker detected during search")
            self._begin_validation()
            return Command.none()

        if now - (self._search_started_at or now) > cfg.search_timeout:
            return self._enter_failsafe(now, "search timeout", FailsafeAction.RETURN_HOME)

        if self._search_index >= len(self._search_waypoints):
            return self._enter_failsafe(now, "spiral search exhausted", FailsafeAction.RETURN_HOME)

        waypoint = self._search_waypoints[self._search_index]
        if estimate.position.distance_to(waypoint) < 1.2:
            self._search_index += 1
            if self._search_index >= len(self._search_waypoints):
                return self._enter_failsafe(now, "spiral search exhausted", FailsafeAction.RETURN_HOME)
            waypoint = self._search_waypoints[self._search_index]
        return self._follow_towards(waypoint, estimate, now, allow_replan)

    def _begin_validation(self) -> None:
        self.validation_gate.reset(candidate_position=self._candidate_position)
        self._follower = None
        self._trajectory_goal = None

    def _tick_validate(self, estimate: EstimatedState, now: float, allow_replan: bool) -> Command:
        assert self._candidate_position is not None, "validation requires a candidate"
        hover_point = self._candidate_position.with_z(self.config.validation.validation_altitude)

        # Only count frames once the vehicle is actually hovering over the
        # candidate at the validation altitude; frames captured on the way
        # down are too far out to decode the ID and would let a decoy pass.
        at_hover_point = (
            estimate.position.horizontal_distance_to(hover_point) <= 1.5
            and abs(estimate.altitude - hover_point.z) <= 1.0
        )
        if not at_hover_point:
            self._last_frame = None
            return Command.setpoint_at(
                hover_point, speed_limit=self.config.landing.reposition_speed_limit
            )

        if self._last_frame is not None:
            result = self.validation_gate.observe(self._last_frame)
            self._last_frame = None
            if result is ValidationResult.ACCEPTED:
                validated = self.validation_gate.position_estimate() or self._candidate_position
                self._validated_position = validated
                self._transition(DecisionState.LANDING, now, "marker validated over multiple frames")
                self._begin_landing(estimate)
                return Command.none()
            if result is ValidationResult.REJECTED:
                self._validation_attempts += 1
                if self._candidate_position is not None:
                    # Remember the rejected location so the search does not
                    # immediately re-trigger on the same decoy or phantom.
                    self._rejected_candidates.append(self._candidate_position)
                if self._validation_attempts >= self.config.validation.max_attempts:
                    return self._enter_failsafe(
                        now, "validation failed repeatedly", FailsafeAction.RETURN_HOME
                    )
                self._transition(DecisionState.SEARCH, now, "validation threshold not met")
                return Command.none()

        # Hover / hold over the candidate while frames accumulate.
        return Command.setpoint_at(hover_point, speed_limit=self.config.landing.reposition_speed_limit)

    def _begin_landing(self, estimate: EstimatedState) -> None:
        self._descent_target_altitude = max(
            self.config.landing.final_descent_altitude,
            estimate.altitude - self.config.landing.descent_step,
        )
        self._follower = None
        self._trajectory_goal = None

    def _tick_landing(self, estimate: EstimatedState, now: float, allow_replan: bool) -> Command:
        assert self._validated_position is not None, "landing requires a validated position"
        landing_cfg = self.config.landing

        # Refine the landing point with fresh detections (continuous visual contact).
        detection = self._recent_detection(now, max_age=1.0)
        if detection is not None:
            refined = detection.world_position
            self._validated_position = self._validated_position.lerp(refined, 0.3)

        # Marker lost for too long while still high: abort and revalidate.
        if now - self._last_detection_time > landing_cfg.marker_lost_tolerance:
            self._landing_attempts += 1
            self.aborts += 1
            if self._landing_attempts >= landing_cfg.max_landing_attempts:
                return self._enter_failsafe(now, "marker lost during descent", FailsafeAction.RETURN_HOME)
            self._candidate_position = self._validated_position
            self._transition(DecisionState.VALIDATE, now, "marker lost during descent; revalidating")
            self._begin_validation()
            return Command.none()

        # Safety check of the descent corridor against the occupancy map.
        if self.inflated is not None and allow_replan:
            corridor_clear = not self.inflated.segment_colliding(
                estimate.position,
                self._validated_position.with_z(self.config.landing.final_descent_altitude),
            )
            if not corridor_clear:
                self.aborts += 1
                self._landing_attempts += 1
                if self._landing_attempts >= landing_cfg.max_landing_attempts:
                    return self._enter_failsafe(
                        now, "descent corridor blocked", FailsafeAction.RETURN_HOME
                    )
                self._candidate_position = self._validated_position
                self._transition(DecisionState.SEARCH, now, "descent corridor blocked; re-searching")
                self._begin_search(estimate, now)
                return Command.none()

        # Within the final-descent window: hand over to the autopilot's lander.
        horizontal_error = estimate.position.horizontal_distance_to(self._validated_position)
        if (
            estimate.altitude <= self.config.landing.final_descent_altitude + 0.3
            and horizontal_error <= 1.5
        ):
            self._transition(DecisionState.FINAL_DESCENT, now, "within 1.5 m of the marker; final descent")
            return Command.land()

        # Step the descent staircase.
        if self._descent_target_altitude is None:
            self._descent_target_altitude = estimate.altitude
        if estimate.altitude <= self._descent_target_altitude + 0.4:
            self._descent_target_altitude = max(
                self.config.landing.final_descent_altitude,
                self._descent_target_altitude - landing_cfg.descent_step,
            )
        target = self._validated_position.with_z(self._descent_target_altitude)
        return Command.setpoint_at(target, speed_limit=landing_cfg.reposition_speed_limit)

    def _tick_final_descent(self, estimate: EstimatedState, now: float, allow_replan: bool) -> Command:
        if estimate.altitude < 0.15:
            self._transition(DecisionState.LANDED, now, "touchdown")
            return Command.none()
        return Command.land()

    def _tick_failsafe(self, estimate: EstimatedState, now: float, allow_replan: bool) -> Command:
        return Command.return_home()

    # ------------------------------------------------------------------ #
    # trajectory management
    # ------------------------------------------------------------------ #
    def _follow_towards(
        self, goal: Vec3, estimate: EstimatedState, now: float, allow_replan: bool
    ) -> Command:
        """Plan (if needed), safety-check and follow a trajectory towards ``goal``."""
        needs_plan = (
            self._follower is None
            or self._trajectory_goal is None
            or self._trajectory_goal.distance_to(goal) > 1.0
            or self._follower.is_complete
        )

        # Periodic revalidation of the remaining path against the map.
        if (
            not needs_plan
            and allow_replan
            and self.inflated is not None
            and now - self._last_replan_time > 0.8
            and self._follower is not None
        ):
            remaining = [estimate.position] + self._follower.remaining_waypoints()
            horizon = self._clip_to_horizon(remaining, self.config.safety.replan_check_horizon)
            if self.inflated.path_colliding(horizon):
                needs_plan = True

        if needs_plan:
            if not allow_replan and self._follower is not None and not self._follower.is_complete:
                # Deadline missed: keep flying the stale plan this tick.
                pass
            else:
                self._plan_towards(goal, estimate, now)

        if self._follower is None:
            # Planning failed outright; hold position.
            return Command.setpoint_at(estimate.position)

        target = self._follower.advance(estimate.position)
        if target is None:
            return Command.setpoint_at(goal)
        yaw = math.atan2(target.y - estimate.position.y, target.x - estimate.position.x)
        return Command.setpoint_at(target, yaw=yaw)

    def _plan_towards(self, goal: Vec3, estimate: EstimatedState, now: float) -> None:
        problem = PlanningProblem(
            start=estimate.position,
            goal=goal,
            time_budget=0.25,
            min_altitude=1.0,
            max_altitude=40.0,
        )
        result = self.planner.plan(problem)
        self.last_timings.planning += self._planner_spec.nominal_latency
        self.replans += 1
        self._last_replan_time = now

        if not result.succeeded:
            self.planner_failures += 1
            self._follower = None
            self._trajectory_goal = None
            return

        # Duck-typed so wrapped planners (fault injectors, custom components)
        # still report their fallback use.
        if getattr(self.planner, "last_fallback_used", False):
            self.planner_fallbacks += 1

        waypoints = result.waypoints
        if self.inflated is not None and len(waypoints) > 2:
            waypoints = shortcut_smooth(
                waypoints, lambda a, b: not self.inflated.segment_colliding(a, b)
            )
        self._follower = TrajectoryFollower(Trajectory(waypoints))
        self._trajectory_goal = goal

    @staticmethod
    def _clip_to_horizon(waypoints: list[Vec3], horizon: float) -> list[Vec3]:
        """Truncate a polyline after ``horizon`` metres of arc length."""
        clipped = [waypoints[0]]
        travelled = 0.0
        for a, b in zip(waypoints, waypoints[1:]):
            segment = a.distance_to(b)
            if travelled + segment >= horizon:
                remaining = horizon - travelled
                if segment > 1e-9:
                    clipped.append(a.lerp(b, remaining / segment))
                break
            clipped.append(b)
            travelled += segment
        return clipped

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _best_candidate(self, frame: DetectionFrame) -> Detection | None:
        """The detection most likely to be the briefed target marker.

        Detections near previously rejected candidate positions (decoys,
        glare phantoms) are ignored so the search keeps exploring instead of
        oscillating between search and validation on the same false positive.
        """
        identified = frame.best_for(self.target_marker_id)
        if identified is not None and not self._near_rejected(identified.world_position):
            return identified
        if not self._accept_unidentified:
            return None
        candidates = [
            d
            for d in frame.detections
            if d.marker_id is None
            and d.confidence >= 0.6
            and not self._near_rejected(d.world_position)
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda d: d.confidence)

    def _near_rejected(self, position: Vec3, radius: float = 3.0) -> bool:
        """Whether a position is close to a previously rejected candidate."""
        return any(
            position.horizontal_distance_to(rejected) <= radius
            for rejected in self._rejected_candidates
        )

    def _recent_detection(self, now: float, max_age: float) -> Detection | None:
        if self._last_detection is None:
            return None
        if now - self._last_detection_time > max_age:
            return None
        return self._last_detection

    def _transition(self, new_state: DecisionState, now: float, reason: str) -> None:
        self.transitions.append(StateTransition(now, self.state, new_state, reason))
        self.state = new_state

    def _enter_failsafe(self, now: float, reason: str, action: FailsafeAction) -> Command:
        self.aborts += 1
        self.failsafe_action = action
        self._transition(DecisionState.FAILSAFE, now, reason)
        return Command.return_home()

    # ------------------------------------------------------------------ #
    # exposed status
    # ------------------------------------------------------------------ #
    @property
    def validated_position(self) -> Vec3 | None:
        return self._validated_position

    @property
    def is_terminal(self) -> bool:
        return self.state in (DecisionState.LANDED, DecisionState.FAILSAFE)

    def map_memory_bytes(self) -> int:
        return self.mapping.memory_bytes()
