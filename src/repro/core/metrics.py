"""Run records and campaign aggregation.

Every mission run yields a :class:`RunRecord`; a :class:`CampaignResult`
aggregates them into the quantities the paper reports:

* Table I / III — successful-landing rate, failure rate due to collision,
  failure rate due to poor landing;
* Table II — marker-detection false-negative rate;
* §V — mean detection deviation, mean landing deviation.
"""

from __future__ import annotations

import enum
import json
import math
import statistics
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.jsonl import iter_frame_records, read_frame_header, validate_frame_header

#: Schema version stamped into campaign-result JSONL headers.  Version 2
#: added the failsafe fields (``failsafe_action`` / ``failsafe_reason``), the
#: ``failure_mode`` classification and the ``injected_faults`` metadata;
#: readers accept any version up to this one, and records from older files
#: simply leave the new fields at their defaults.
RESULT_SCHEMA_VERSION = 2


class RunOutcome(enum.Enum):
    """Classification of a mission run, matching the paper's three columns."""

    SUCCESS = "success"
    COLLISION = "collision"
    POOR_LANDING = "poor_landing"


@dataclass
class DetectionStats:
    """Frame-level detection bookkeeping for the false-negative rate."""

    frames_with_visible_marker: int = 0
    frames_detected: int = 0
    false_positive_frames: int = 0
    deviation_samples: list[float] = field(default_factory=list)

    @property
    def false_negative_rate(self) -> float:
        """Fraction of marker-visible frames with no detection of that marker."""
        if self.frames_with_visible_marker == 0:
            return 0.0
        misses = self.frames_with_visible_marker - self.frames_detected
        return misses / self.frames_with_visible_marker

    @property
    def mean_detection_deviation(self) -> float:
        """Mean error between detected and true marker position, metres."""
        if not self.deviation_samples:
            return float("nan")
        return statistics.fmean(self.deviation_samples)

    def merge(self, other: "DetectionStats") -> None:
        self.frames_with_visible_marker += other.frames_with_visible_marker
        self.frames_detected += other.frames_detected
        self.false_positive_frames += other.false_positive_frames
        self.deviation_samples.extend(other.deviation_samples)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DetectionStats":
        return cls(**data)


@dataclass
class ResourceStats:
    """Companion-computer utilisation samples (HIL / real-world campaigns)."""

    cpu_utilisation_samples: list[float] = field(default_factory=list)
    memory_mb_samples: list[float] = field(default_factory=list)
    gpu_utilisation_samples: list[float] = field(default_factory=list)
    deadline_misses: int = 0

    @property
    def mean_cpu(self) -> float:
        return statistics.fmean(self.cpu_utilisation_samples) if self.cpu_utilisation_samples else 0.0

    @property
    def peak_cpu(self) -> float:
        return max(self.cpu_utilisation_samples, default=0.0)

    @property
    def peak_memory_mb(self) -> float:
        return max(self.memory_mb_samples) if self.memory_mb_samples else 0.0

    @property
    def mean_memory_mb(self) -> float:
        return statistics.fmean(self.memory_mb_samples) if self.memory_mb_samples else 0.0

    @property
    def mean_gpu(self) -> float:
        return statistics.fmean(self.gpu_utilisation_samples) if self.gpu_utilisation_samples else 0.0

    def merge(self, other: "ResourceStats") -> None:
        self.cpu_utilisation_samples.extend(other.cpu_utilisation_samples)
        self.memory_mb_samples.extend(other.memory_mb_samples)
        self.gpu_utilisation_samples.extend(other.gpu_utilisation_samples)
        self.deadline_misses += other.deadline_misses

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ResourceStats":
        return cls(**data)


@dataclass
class RunRecord:
    """The result of executing one scenario with one system generation."""

    scenario_id: str
    system_name: str
    outcome: RunOutcome
    landing_error: float = float("nan")      # metres from the target marker
    collided: bool = False
    collision_obstacle: str = ""
    landed: bool = False
    mission_time: float = 0.0
    detection: DetectionStats = field(default_factory=DetectionStats)
    resources: ResourceStats = field(default_factory=ResourceStats)
    planner_failures: int = 0
    planner_fallbacks: int = 0
    aborts: int = 0
    adverse_weather: bool = False
    failure_reason: str = ""
    #: The failsafe the system executed (``FailsafeAction.value``), or ``""``
    #: when the run never entered the failsafe state.
    failsafe_action: str = ""
    #: The reason recorded on the transition into the failsafe state.
    failsafe_reason: str = ""
    #: Failure-mode taxonomy label (see :mod:`repro.faults.classifier`);
    #: stamped by fault-aware mission runs, derivable on the fly otherwise.
    failure_mode: str = ""
    #: Per-spec injected-fault metadata (name/target/mode, arming, activation
    #: window, event count) stamped by :class:`repro.faults.FaultHarness`.
    injected_faults: list[dict] = field(default_factory=list)
    repetition: int = 0
    #: Content hash of the scenario this run flew (set by the campaign
    #: persistence layer); guards resumed campaigns against scenario-id
    #: collisions between different suites.
    scenario_fingerprint: str = ""

    @property
    def succeeded(self) -> bool:
        return self.outcome is RunOutcome.SUCCESS

    # ------------------------------------------------------------------ #
    # serialization (JSON-compatible; NaN encodes as null)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        data["outcome"] = self.outcome.value
        if math.isnan(self.landing_error):
            data["landing_error"] = None
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunRecord":
        data = dict(data)
        data["outcome"] = RunOutcome(data["outcome"])
        if data.get("landing_error") is None:
            data["landing_error"] = float("nan")
        if isinstance(data.get("detection"), dict):
            data["detection"] = DetectionStats.from_dict(data["detection"])
        if isinstance(data.get("resources"), dict):
            data["resources"] = ResourceStats.from_dict(data["resources"])
        return cls(**data)


#: Record-level factor accessors: the grouping labels derivable from a
#: :class:`RunRecord` alone (no scenario join required).  Each accessor
#: returns the tuple of labels the record belongs to — a tuple so that
#: multi-label factors (e.g. the scenario-joined stress axes added by
#: :mod:`repro.analysis.slicing`) share the same shape.
RECORD_FACTORS: dict[str, Callable[[RunRecord], tuple[str, ...]]] = {
    "system": lambda record: (record.system_name,),
    "outcome": lambda record: (record.outcome.value,),
    "weather": lambda record: ("adverse" if record.adverse_weather else "normal",),
    "scenario": lambda record: (record.scenario_id,),
    "repetition": lambda record: (f"rep{record.repetition}",),
    "failure-cause": lambda record: (
        record.failsafe_reason or record.failure_reason or "(none)",
    ),
}


@dataclass
class CampaignResult:
    """Aggregation of many run records for one system generation."""

    system_name: str
    records: list[RunRecord] = field(default_factory=list)

    def add(self, record: RunRecord) -> None:
        if record.system_name != self.system_name:
            raise ValueError(
                f"record for {record.system_name} added to campaign of {self.system_name}"
            )
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------ #
    # Table I / III quantities
    # ------------------------------------------------------------------ #
    def _rate(self, outcome: RunOutcome) -> float:
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.outcome is outcome) / len(self.records)

    @property
    def success_rate(self) -> float:
        return self._rate(RunOutcome.SUCCESS)

    @property
    def collision_failure_rate(self) -> float:
        return self._rate(RunOutcome.COLLISION)

    @property
    def poor_landing_failure_rate(self) -> float:
        return self._rate(RunOutcome.POOR_LANDING)

    # ------------------------------------------------------------------ #
    # Table II quantities
    # ------------------------------------------------------------------ #
    @property
    def detection_stats(self) -> DetectionStats:
        merged = DetectionStats()
        for record in self.records:
            merged.merge(record.detection)
        return merged

    @property
    def false_negative_rate(self) -> float:
        return self.detection_stats.false_negative_rate

    # ------------------------------------------------------------------ #
    # landing accuracy and resources
    # ------------------------------------------------------------------ #
    @property
    def mean_landing_error(self) -> float:
        errors = [r.landing_error for r in self.records if r.landed and r.landing_error == r.landing_error]
        return statistics.fmean(errors) if errors else float("nan")

    @property
    def success_mean_landing_error(self) -> float:
        """Mean landing error over *successful* landings only.

        §V.C's accuracy quantity: :attr:`mean_landing_error` also averages
        poor landings that touched down metres away (e.g. on a decoy), whose
        outliers swamp the centimetre-scale signal at small campaign sizes.
        """
        errors = [
            r.landing_error
            for r in self.records
            if r.succeeded and r.landing_error == r.landing_error
        ]
        return statistics.fmean(errors) if errors else float("nan")

    @property
    def resource_stats(self) -> ResourceStats:
        merged = ResourceStats()
        for record in self.records:
            merged.merge(record.resources)
        return merged

    def filter(self, predicate: Callable[[RunRecord], bool]) -> "CampaignResult":
        """A new result holding only the records ``predicate`` accepts.

        This is the one slicing path shared by user code and the analytics
        engine (:mod:`repro.analysis.slicing`); :meth:`subset` is a thin
        wrapper over it.
        """
        result = CampaignResult(system_name=self.system_name)
        for record in self.records:
            if predicate(record):
                result.add(record)
        return result

    def subset(self, adverse: bool) -> "CampaignResult":
        """Only the adverse-weather (or only the normal-weather) records."""
        return self.filter(lambda record: record.adverse_weather == adverse)

    def summary_row(self) -> dict[str, float | str]:
        """One row of Table I / III."""
        return {
            "Landing System": self.system_name,
            "Successful Landing Rate": round(100.0 * self.success_rate, 2),
            "Failure rate due to Collision": round(100.0 * self.collision_failure_rate, 2),
            "Failure rate due to poor landing": round(100.0 * self.poor_landing_failure_rate, 2),
        }

    # ------------------------------------------------------------------ #
    # persistence (JSON Lines: one header line, then one record per line)
    # ------------------------------------------------------------------ #
    def to_jsonl(self, path: str | Path) -> Path:
        """Write all records as JSONL (header + one line per run) and return the path.

        The format is append-friendly: the campaign runner re-emits records
        one at a time with :func:`append_record_jsonl`, which is what makes
        interrupted campaigns resumable.
        """
        write_campaign_jsonl(path, self._header(), self.records)
        return Path(path)

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "CampaignResult":
        """Load a result written by :meth:`to_jsonl` (or grown by appends).

        A torn trailing line — the artifact of a campaign killed mid-append —
        is dropped with a warning; a malformed line anywhere else raises.
        """
        header, records, _ = read_campaign_jsonl(path)
        result = cls(system_name=str(header["system"]))
        for record in records:
            result.add(record)
        return result

    def _header(self) -> dict[str, Any]:
        return {
            "kind": "campaign-result",
            "schema": RESULT_SCHEMA_VERSION,
            "system": self.system_name,
        }


def write_campaign_jsonl(
    path: str | Path, header: dict[str, Any], records: list[RunRecord]
) -> Path:
    """(Re)write a campaign-result JSONL file with an explicit header.

    The campaign runner uses this both for full dumps and to heal a file
    whose trailing record was torn by a mid-append kill.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for record in records:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
    return path


def parse_record_line(line: str) -> RunRecord:
    """Parse one campaign-result JSONL payload line into a :class:`RunRecord`."""
    return RunRecord.from_dict(json.loads(line))


def read_campaign_jsonl(path: str | Path) -> tuple[dict[str, Any], list[RunRecord], bool]:
    """Parse a campaign-result JSONL file into (header, records, torn_tail).

    ``torn_tail`` is True when the file's final line failed to parse — the
    expected leftover of a process killed mid-append — in which case that
    line is dropped with a warning so the campaign can still resume.  A
    malformed header or a malformed line anywhere *before* the tail raises.
    """
    path = Path(path)
    header = read_frame_header(path)
    validate_frame_header(path, header, "campaign-result", RESULT_SCHEMA_VERSION)
    torn_errors: list[Exception] = []
    records = list(
        iter_frame_records(
            path,
            "campaign-result",
            RESULT_SCHEMA_VERSION,
            parse_record_line,
            description="run record",
            skip_header_validation=True,
            on_torn_tail=torn_errors.append,
        )
    )
    return header, records, bool(torn_errors)


def append_record_jsonl(
    path: str | Path,
    result_system: str,
    record: RunRecord,
    extra_header: dict[str, Any] | None = None,
) -> None:
    """Append one run record to a campaign-result JSONL file.

    Creates the file (with its header line, merged with ``extra_header``) on
    first use; the campaign runner calls this after every completed run so a
    killed campaign loses at most the in-flight missions.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not path.exists() or path.stat().st_size == 0:
        header = CampaignResult(system_name=result_system)._header()
        if extra_header:
            header.update(extra_header)
        path.write_text(json.dumps(header, sort_keys=True) + "\n", encoding="utf-8")
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
