"""Decision-making state machine vocabulary (Fig. 2 of the paper)."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DecisionState(enum.Enum):
    """States of the decision-making module."""

    TRANSIT = "transit"            # fly to the initial GPS estimate
    SEARCH = "search"              # spiral search for the marker
    VALIDATE = "validate"          # hover, collect frames, confirm the marker
    LANDING = "landing"            # follow the descent waypoint sequence
    FINAL_DESCENT = "final_descent"  # below 1.5 m: commit to touchdown
    LANDED = "landed"
    FAILSAFE = "failsafe"          # abort and execute the failsafe action


class FailsafeAction(enum.Enum):
    """What the failsafe does after an abort (§III.D)."""

    RETURN_HOME = "return_home"
    RETRY_SEARCH = "retry_search"
    RETRY_VALIDATION = "retry_validation"


@dataclass(frozen=True)
class StateTransition:
    """A recorded state change, kept for diagnostics and the failure analysis."""

    timestamp: float
    from_state: DecisionState
    to_state: DecisionState
    reason: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.timestamp:7.1f}s] {self.from_state.value} -> {self.to_state.value}: {self.reason}"
