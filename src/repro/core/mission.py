"""Mission runner: executes one scenario with one landing-system generation.

The runner owns the ground-truth world, the simulated flight stack and the
sensors; the landing system only ever receives sensor products and the state
estimate.  After the run it classifies the outcome the way the paper's tables
do (success / failure-by-collision / failure-by-poor-landing) and collects the
detection and resource statistics the other tables need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING

from repro.core.commands import Command, CommandKind
from repro.core.config import LandingSystemConfig
from repro.core.landing_system import LandingSystem
from repro.core.metrics import DetectionStats, ResourceStats, RunOutcome, RunRecord
from repro.core.platform import DesktopPlatform, ExecutionPlatform, TickBudget
from repro.core.states import DecisionState
from repro.geometry import Pose, Vec3
from repro.sensors.camera import CameraFrame, DownwardCamera
from repro.sensors.depth import DepthCamera, PointCloud
from repro.vehicle.autopilot import Autopilot, AutopilotConfig, FlightMode
from repro.world.scenario import Scenario
from repro.world.world import World

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.faults.harness import FaultHarness
    from repro.obs.trace import FlightRecorder


@dataclass
class MissionConfig:
    """Timing and termination settings of a mission run."""

    physics_dt: float = 0.04            # 25 Hz vehicle dynamics
    decision_period: float = 0.2        # 5 Hz decision / perception rate
    depth_period: float = 0.4           # 2.5 Hz occupancy-map updates
    max_mission_time: float = 240.0
    collision_margin: float = 0.05
    success_radius: float = 1.0         # landing within this distance = success
    min_marker_pixels_for_visibility: float = 7.0
    end_on_failsafe: bool = True
    camera_seed: int = 0
    #: Elide perception work on ticks that provably cannot change the plan:
    #: camera frames proven to contain only ground texture skip rendering and
    #: detection (timings still charged, RNG still advanced), and depth
    #: captures proven empty skip ray casting.  Byte-identical to the slow
    #: path — every skip condition is conservative — and automatically
    #: disabled under fault injection or custom detectors that do not declare
    #: ``blank_frame_silent``.
    fast_path: bool = True


@dataclass
class MissionDebugTrace:
    """Optional per-run trace used by the examples and failure-analysis bench."""

    positions: list[Vec3] = field(default_factory=list)
    states: list[str] = field(default_factory=list)
    estimation_errors: list[float] = field(default_factory=list)


class MissionRunner:
    """Runs one scenario end-to-end."""

    def __init__(
        self,
        scenario: Scenario,
        system_config: LandingSystemConfig,
        mission_config: MissionConfig | None = None,
        platform: ExecutionPlatform | None = None,
        detector_network=None,
        autopilot_config: AutopilotConfig | None = None,
        world: World | None = None,
        record_trace: bool = False,
        fault_harness: "FaultHarness | None" = None,
        recorder: "FlightRecorder | None" = None,
    ) -> None:
        self.scenario = scenario
        self.system_config = system_config
        self.mission_config = mission_config or MissionConfig()
        self.platform = platform or DesktopPlatform()
        self.world = world or scenario.build_world()
        self.record_trace = record_trace
        self.trace = MissionDebugTrace()
        self.fault_harness = fault_harness
        #: Optional flight recorder (see :mod:`repro.obs.trace`).  Strictly a
        #: side channel: it only ever receives wall-clock span durations and
        #: event counts, so attaching one cannot change a single record byte.
        self.recorder = recorder
        # Fast-path bookkeeping (always on — plain int increments): the
        # skip-rate figures exported as metrics and trace counters.
        self.frames_rendered = 0
        self.frames_skipped = 0
        self.frames_lost = 0
        self.depth_captures = 0
        self.depth_skipped = 0
        self.clouds_lost = 0

        autopilot_config = autopilot_config or AutopilotConfig()
        autopilot_config.takeoff_altitude = system_config.cruise_altitude
        self.autopilot = Autopilot(
            self.world,
            config=autopilot_config,
            home=scenario.start_position,
            seed=scenario.seed,
        )
        self.camera = DownwardCamera(seed=scenario.seed + self.mission_config.camera_seed)
        self.depth_forward = DepthCamera(facing="forward", seed=scenario.seed + 11)
        self.depth_down = DepthCamera(facing="down", seed=scenario.seed + 12)

        self.system = LandingSystem(
            config=system_config,
            target_marker_id=self._target_marker_id(),
            gps_target=scenario.gps_target,
            home=scenario.start_position,
            seed=scenario.seed,
            detector_network=detector_network,
        )
        if fault_harness is not None:
            # Injectors wrap the registry-built components at the interfaces
            # the registry declares; the harness sees sensor products and the
            # estimate only — the same boundary discipline as the system.
            fault_harness.attach(self.system)

    def _target_marker_id(self) -> int:
        marker = self.world.target_marker
        if marker is None:
            raise ValueError("scenario world has no target marker")
        return marker.marker_id

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self) -> RunRecord:
        """Execute the mission and return its record."""
        mission = self.mission_config
        detection_stats = DetectionStats()
        resource_stats = ResourceStats()

        self.autopilot.arm_and_takeoff(self.system_config.cruise_altitude)

        time_now = 0.0
        next_decision = 0.0
        next_depth = 0.0
        collided = False
        collision_name = ""
        budget = TickBudget()

        # Fast-path eligibility is fixed for the whole run: never under a
        # fault harness (injectors must see every frame) and only for
        # detectors declared silent on blank frames.
        fast_path = (
            mission.fast_path
            and self.fault_harness is None
            and self.system.frame_elision_safe
        )
        max_view_angle = self.camera.max_view_angle()
        # The flight recorder only ever sees perf_counter durations and event
        # counts behind ``rec is not None`` guards: the untraced loop is
        # byte-for-byte the same code path, and the traced one reads no RNG.
        rec = self.recorder

        while time_now < mission.max_mission_time:
            time_now += mission.physics_dt
            if rec is None:
                state = self.autopilot.step(mission.physics_dt)
            else:
                _t = perf_counter()
                state = self.autopilot.step(mission.physics_dt)
                rec.add("physics", _t)

            # Ground-truth collision monitoring (only while airborne).
            if state.position.z > 0.25:
                obstacle = self.world.colliding_obstacle(
                    state.position, margin=mission.collision_margin
                )
                if obstacle is not None:
                    collided = True
                    collision_name = obstacle.name
                    break

            if self.record_trace:
                self.trace.positions.append(state.position)
                self.trace.states.append(self.system.state.value)
                self.trace.estimation_errors.append(self.autopilot.estimation_error)

            if self.autopilot.mode is FlightMode.TAKEOFF:
                continue

            if self.autopilot.is_landed:
                break

            harness = self.fault_harness

            # Depth sensing and mapping at its own (lower) rate.
            if time_now >= next_depth and not budget.skip_mapping:
                next_depth = time_now + mission.depth_period
                estimate = self.autopilot.estimated_state
                if harness is not None:
                    _t = perf_counter() if rec is not None else 0.0
                    estimate = harness.filter_estimate(estimate, time_now)
                    if rec is not None:
                        rec.add("harness", _t)
                _t = perf_counter() if rec is not None else 0.0
                if (
                    fast_path
                    and self.depth_forward.capture_provably_empty(self.world, state.pose)
                    and self.depth_down.capture_provably_empty(self.world, state.pose)
                ):
                    # Both captures would return empty clouds without touching
                    # their RNGs; build the identical merged cloud directly.
                    merged = PointCloud(
                        points=[],
                        timestamp=time_now,
                        sensor_position=estimate.pose.position,
                    )
                    self.depth_skipped += 1
                else:
                    cloud = self.depth_forward.capture(
                        self.world, state.pose, estimated_pose=estimate.pose, timestamp=time_now
                    )
                    cloud_down = self.depth_down.capture(
                        self.world, state.pose, estimated_pose=estimate.pose, timestamp=time_now
                    )
                    merged = cloud.merged_with(cloud_down)
                    self.depth_captures += 1
                if rec is not None:
                    rec.add("sense", _t)
                if harness is not None:
                    _t = perf_counter() if rec is not None else 0.0
                    merged = harness.filter_cloud(merged, time_now)
                    if rec is not None:
                        rec.add("harness", _t)
                if merged is not None:
                    _t = perf_counter() if rec is not None else 0.0
                    self.system.process_cloud(merged, estimate)
                    if rec is not None:
                        rec.add("map", _t)
                else:
                    # Cloud lost to a sensor fault: no fusion, no cost.
                    self.system.last_timings.mapping = 0.0
                    self.clouds_lost += 1
                if harness is not None:
                    _t = perf_counter() if rec is not None else 0.0
                    harness.corrupt_mapping(self.system, estimate, time_now)
                    if rec is not None:
                        rec.add("harness", _t)

            # Perception + decision at the decision rate.
            if time_now >= next_decision:
                next_decision = time_now + mission.decision_period
                estimate = self.autopilot.estimated_state
                if harness is not None:
                    estimate = harness.filter_estimate(estimate, time_now)
                if fast_path and self._frame_provably_blank(state.pose, max_view_angle):
                    # The render would contain only ground texture and the
                    # detector is declared silent on such frames: advance the
                    # camera RNG exactly as a capture would and charge the
                    # nominal detection cost without rendering or detecting.
                    _t = perf_counter() if rec is not None else 0.0
                    self.camera.consume_skipped_frame_rng(self.world)
                    if rec is not None:
                        rec.add("sense", _t)
                        _t = perf_counter()
                    self.system.process_skipped_frame(time_now)
                    if rec is not None:
                        rec.add("detect", _t)
                    self.frames_skipped += 1
                else:
                    _t = perf_counter() if rec is not None else 0.0
                    frame = self.camera.capture(
                        self.world, state.pose, estimated_pose=estimate.pose, timestamp=time_now
                    )
                    if rec is not None:
                        rec.add("sense", _t)
                    self.frames_rendered += 1
                    if harness is not None:
                        _t = perf_counter() if rec is not None else 0.0
                        frame = harness.filter_frame(frame, time_now)
                        if rec is not None:
                            rec.add("harness", _t)
                    if frame is not None:
                        _t = perf_counter() if rec is not None else 0.0
                        result = self.system.process_frame(frame)
                        self._score_detections(frame, result, detection_stats)
                        if rec is not None:
                            rec.add("detect", _t)
                    else:
                        # Frame lost to a sensor fault: no detection ran this
                        # tick, so no detection cost either (process_frame is
                        # what normally refreshes the timing each tick).
                        self.system.last_timings.detection = 0.0
                        self.frames_lost += 1

                _t = perf_counter() if rec is not None else 0.0
                command = self.system.decide(
                    estimate, time_now, allow_replan=budget.allow_replan
                )
                if rec is not None:
                    rec.add("plan", _t)
                if harness is not None:
                    _t = perf_counter() if rec is not None else 0.0
                    command = harness.filter_command(command, time_now)
                    harness.adjust_timings(self.system.last_timings, time_now)
                    if rec is not None:
                        rec.add("harness", _t)
                _t = perf_counter() if rec is not None else 0.0
                self._apply_command(command)

                budget = self.platform.schedule_tick(
                    self.system.last_timings, mission.decision_period
                )
                if rec is not None:
                    rec.add("control", _t)
                    timings = self.system.last_timings
                    rec.charge_nominal(timings.detection, timings.mapping, timings.planning)
                resource_stats.cpu_utilisation_samples.append(budget.cpu_utilisation)
                resource_stats.memory_mb_samples.append(budget.memory_mb)
                resource_stats.gpu_utilisation_samples.append(budget.gpu_utilisation)
                if budget.deadline_missed:
                    resource_stats.deadline_misses += 1

                if self.system.state is DecisionState.FAILSAFE and mission.end_on_failsafe:
                    break

        return self._build_record(
            time_now, collided, collision_name, detection_stats, resource_stats
        )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    #: Widest camera view cone (tilt + half-diagonal FOV, radians) the fast
    #: path will reason about; beyond this the ground-footprint bound blows
    #: up towards the horizon and the frame is rendered normally.
    _MAX_SKIP_VIEW_CONE = math.radians(85.0)

    def _frame_provably_blank(self, pose: Pose, max_view_angle: float) -> bool:
        """True when a capture at ``pose`` provably renders only ground texture.

        Conservative analytic test: with zero glare and image noise the
        camera draws no RNG beyond its frame counter, and every pixel ray
        leaves the camera within ``tilt + max_view_angle`` of straight down,
        so its ground hit lies within ``altitude * tan(...)`` of the nadir
        point.  If no marker footprint and no obstacle column reaches that
        disc, the rendered image is pure ground texture — on which the
        configured detector is declared silent — and the frame cannot change
        any downstream state.  Any doubt (horizon-grazing tilt, weather
        image structure, low altitude) falls back to a full render.
        """
        weather = self.world.weather
        if weather.glare > 0 or weather.image_noise > 0:
            return False
        altitude = pose.position.z - self.world.ground_altitude
        if altitude <= 0.5:
            return False
        q = pose.orientation
        cos_tilt = 1.0 - 2.0 * (q.x * q.x + q.y * q.y)
        tilt = math.acos(min(1.0, max(-1.0, cos_tilt)))
        view_cone = tilt + max_view_angle
        if view_cone >= self._MAX_SKIP_VIEW_CONE:
            return False
        reach = altitude * math.tan(view_cone)
        return self.world.geometry().frame_render_clear(pose.position, reach)

    def _apply_command(self, command: Command) -> None:
        if command.kind is CommandKind.SETPOINT and command.setpoint is not None:
            self.autopilot.set_position_setpoint(
                command.setpoint, yaw=command.yaw, speed_limit=command.speed_limit
            )
        elif command.kind is CommandKind.LAND:
            self.autopilot.command_land()
        elif command.kind is CommandKind.RETURN:
            self.autopilot.command_return()

    def _score_detections(
        self, frame: CameraFrame, result, stats: DetectionStats
    ) -> None:
        """Score the frame against ground truth for the Table II statistics."""
        target = self.world.target_marker
        if target is None:
            return
        visible = any(m.marker_id == target.marker_id for m in frame.visible_markers)
        if not visible:
            return
        # Require a minimally resolvable apparent size, as the paper's FN rate
        # is computed over frames where detection is plausible at all.
        altitude = max(frame.camera_pose.position.z, 1e-3)
        apparent = frame.intrinsics.pixels_per_meter(altitude) * target.size
        if apparent < self.mission_config.min_marker_pixels_for_visibility:
            return
        stats.frames_with_visible_marker += 1

        matched = False
        for detection in result.detections:
            deviation = detection.world_position.horizontal_distance_to(target.position)
            if deviation <= 2.0:
                matched = True
                stats.deviation_samples.append(deviation)
                break
        if matched:
            stats.frames_detected += 1
        for detection in result.detections:
            if detection.marker_id == target.marker_id:
                continue
            if detection.world_position.horizontal_distance_to(target.position) > 3.0:
                stats.false_positive_frames += 1
                break

    def _build_record(
        self,
        mission_time: float,
        collided: bool,
        collision_name: str,
        detection_stats: DetectionStats,
        resource_stats: ResourceStats,
    ) -> RunRecord:
        target = self.world.target_marker
        final_position = self.autopilot.true_state.position
        landed = self.autopilot.is_landed
        landing_error = (
            final_position.horizontal_distance_to(target.position)
            if target is not None
            else float("nan")
        )

        if collided:
            outcome = RunOutcome.COLLISION
            reason = f"collision with {collision_name}"
        elif (
            landed
            and target is not None
            and landing_error <= self.mission_config.success_radius
            and self.world.is_valid_landing_point(final_position)
        ):
            outcome = RunOutcome.SUCCESS
            reason = ""
        else:
            outcome = RunOutcome.POOR_LANDING
            if not landed:
                reason = (
                    "failsafe abort"
                    if self.system.state is DecisionState.FAILSAFE
                    else "mission timeout"
                )
            else:
                reason = "landed away from the marker"

        failsafe_reason = ""
        for transition in self.system.transitions:
            if transition.to_state is DecisionState.FAILSAFE:
                failsafe_reason = transition.reason
                break

        record = RunRecord(
            scenario_id=self.scenario.scenario_id,
            system_name=self.system_config.name,
            outcome=outcome,
            landing_error=landing_error if landed else float("nan"),
            collided=collided,
            collision_obstacle=collision_name,
            landed=landed,
            mission_time=mission_time,
            detection=detection_stats,
            resources=resource_stats,
            planner_failures=self.system.planner_failures,
            planner_fallbacks=self.system.planner_fallbacks,
            aborts=self.system.aborts,
            adverse_weather=self.scenario.is_adverse_weather,
            failure_reason=reason,
            failsafe_action=(
                self.system.failsafe_action.value
                if self.system.failsafe_action is not None
                else ""
            ),
            failsafe_reason=failsafe_reason,
        )
        if self.fault_harness is not None:
            # Stamps injected-fault metadata and the failure-mode label.
            self.fault_harness.finalize(record)
        else:
            # Deferred import: the taxonomy lives with the fault subsystem,
            # which imports this module's config types.
            from repro.faults.classifier import classify_record

            record.failure_mode = classify_record(record).value
        return record


def run_scenario(
    scenario: Scenario,
    system_config: LandingSystemConfig,
    mission_config: MissionConfig | None = None,
    platform: ExecutionPlatform | None = None,
    detector_network=None,
    record_trace: bool = False,
) -> RunRecord:
    """Convenience wrapper: build a runner and execute the scenario once."""
    runner = MissionRunner(
        scenario,
        system_config,
        mission_config=mission_config,
        platform=platform,
        detector_network=detector_network,
        record_trace=record_trace,
    )
    return runner.run()
