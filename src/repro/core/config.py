"""Landing-system configuration: presets, the custom builder and serialization.

The paper evaluates three generations (§IV.B.2):

* **MLS-V1** — OpenCV-based marker detection, no obstacle avoidance.
* **MLS-V2** — TPH-YOLO detection + EGO-Planner (dense local grid, local A*).
* **MLS-V3** — TPH-YOLO detection + OctoMap + RRT*.

:func:`mls_v1`, :func:`mls_v2` and :func:`mls_v3` build the corresponding
configurations; everything else about the mission (state machine timings,
validation thresholds, safety margins) is shared, which is what makes the
comparison an ablation of detector / mapper / planner choices.

Beyond the three presets, :meth:`LandingSystemConfig.custom` composes any
registered component combination by string key — the full 2x3x3 built-in
ablation grid (see :func:`ablation_grid`) plus anything registered through
:mod:`repro.core.registry` — and :meth:`LandingSystemConfig.to_dict` /
:meth:`~LandingSystemConfig.from_dict` round-trip a configuration through
plain JSON-compatible dicts for CLI and multiprocessing use.

The ``DetectorKind`` / ``MapperKind`` / ``PlannerKind`` enums are kept as
back-compat aliases for the built-in component keys: config fields accept
either the enum member or its string key, and built-in selections are
normalized to the enum so existing identity comparisons keep working.
Custom (registry-registered) components are carried as plain strings.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass, field, fields, replace
from itertools import product
from typing import Any, Iterator

# Safe: the registry module does not depend on this one at runtime.
from repro.core.registry import REGISTRY
from repro.core.registry import component_key as component_key_of


class DetectorKind(enum.Enum):
    """Built-in marker detectors (back-compat alias for registry keys)."""

    CLASSICAL = "opencv"
    LEARNED = "tph-yolo"


class MapperKind(enum.Enum):
    """Built-in occupancy-map representations (back-compat alias)."""

    NONE = "none"
    DENSE_GRID = "dense-grid"
    OCTOMAP = "octomap"


class PlannerKind(enum.Enum):
    """Built-in path planners (back-compat alias)."""

    STRAIGHT_LINE = "straight-line"
    EGO_LOCAL_ASTAR = "ego-local-astar"
    RRT_STAR = "rrt-star"


class SystemGeneration(enum.Enum):
    """The three system generations evaluated in the paper."""

    MLS_V1 = "MLS-V1"
    MLS_V2 = "MLS-V2"
    MLS_V3 = "MLS-V3"


def _normalize_component(value: Any, kind_enum: type[enum.Enum], kind_name: str) -> Any:
    """Map a component selector to the back-compat enum when it is built in.

    Enum members pass through; strings matching a built-in key (or a registry
    alias of one, e.g. ``"learned"`` for ``"tph-yolo"``) become the enum
    member; anything else (a custom registry key) is kept as its canonical
    string key.
    """
    if isinstance(value, kind_enum):
        return value
    if isinstance(value, enum.Enum):  # a foreign enum: use its value
        value = value.value
    try:
        return kind_enum(value)
    except ValueError:
        pass
    # Resolve registry aliases (e.g. "learned") to canonical keys.
    if REGISTRY.has(kind_name, value):
        canonical = REGISTRY.canonical_key(kind_name, value)
        try:
            return kind_enum(canonical)
        except ValueError:
            return canonical
    return str(value)


@dataclass(frozen=True)
class SearchConfig:
    """SEARCH-state behaviour."""

    search_altitude: float = 8.0
    spiral_radius: float = 15.0
    spiral_spacing: float = 4.0
    search_timeout: float = 90.0


@dataclass(frozen=True)
class ValidationConfig:
    """VALIDATION-state behaviour (the multi-frame gate)."""

    required_frames: int = 12
    required_hits: int = 7
    validation_altitude: float = 6.0
    position_consistency_radius: float = 1.5
    max_attempts: int = 3


@dataclass(frozen=True)
class LandingConfig:
    """LANDING-state behaviour."""

    descent_step: float = 1.5
    final_descent_altitude: float = 1.5
    marker_lost_tolerance: float = 4.0      # seconds without a detection before abort
    reposition_speed_limit: float = 1.5
    max_landing_attempts: int = 2


@dataclass(frozen=True)
class SafetyConfig:
    """Safety / availability dial (§III.D "Safety and Availability")."""

    obstacle_clearance: float = 0.5
    vehicle_radius: float = 0.35
    replan_check_horizon: float = 6.0
    mission_timeout: float = 240.0
    min_planning_clearance_to_descend: float = 1.0


#: The nested config sections and their types, shared by to_dict / from_dict.
_SECTION_TYPES = {
    "search": SearchConfig,
    "validation": ValidationConfig,
    "landing": LandingConfig,
    "safety": SafetyConfig,
}


@dataclass(frozen=True)
class LandingSystemConfig:
    """Full configuration of one landing-system composition.

    ``detector`` / ``mapper`` / ``planner`` accept either a back-compat enum
    member or a registry string key; built-in keys are normalized to the
    enum.  ``generation`` is set for the paper presets and ``None`` for custom
    compositions, whose display name comes from ``label`` (or is derived from
    the component keys).
    """

    generation: SystemGeneration | None = None
    detector: DetectorKind | str = DetectorKind.CLASSICAL
    mapper: MapperKind | str = MapperKind.NONE
    planner: PlannerKind | str = PlannerKind.STRAIGHT_LINE
    cruise_altitude: float = 12.0
    search: SearchConfig = field(default_factory=SearchConfig)
    validation: ValidationConfig = field(default_factory=ValidationConfig)
    landing: LandingConfig = field(default_factory=LandingConfig)
    safety: SafetyConfig = field(default_factory=SafetyConfig)
    label: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "detector", _normalize_component(self.detector, DetectorKind, "detector")
        )
        object.__setattr__(
            self, "mapper", _normalize_component(self.mapper, MapperKind, "mapper")
        )
        object.__setattr__(
            self, "planner", _normalize_component(self.planner, PlannerKind, "planner")
        )

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        if self.label:
            return self.label
        if self.generation is not None:
            return self.generation.value
        return (
            f"custom({self.detector_key}+{self.mapper_key}+{self.planner_key})"
        )

    @property
    def detector_key(self) -> str:
        """Registry string key of the configured detector."""
        return component_key_of(self.detector)

    @property
    def mapper_key(self) -> str:
        """Registry string key of the configured mapper."""
        return component_key_of(self.mapper)

    @property
    def planner_key(self) -> str:
        """Registry string key of the configured planner."""
        return component_key_of(self.planner)

    @property
    def has_avoidance(self) -> bool:
        return self.mapper_key != MapperKind.NONE.value

    # ------------------------------------------------------------------ #
    # builders
    # ------------------------------------------------------------------ #
    @classmethod
    def custom(
        cls,
        detector: DetectorKind | str = DetectorKind.CLASSICAL,
        mapper: MapperKind | str = MapperKind.NONE,
        planner: PlannerKind | str = PlannerKind.STRAIGHT_LINE,
        *,
        name: str | None = None,
        **overrides: Any,
    ) -> "LandingSystemConfig":
        """Compose a system from component keys (the ablation-grid builder).

        Args:
            detector / mapper / planner: registry keys (or back-compat enums).
            name: optional display name used in campaign tables.
            overrides: any other :class:`LandingSystemConfig` field
                (``cruise_altitude``, ``search``, ``validation``, ...).
        """
        return cls(
            generation=None,
            detector=detector,
            mapper=mapper,
            planner=planner,
            label=name,
            **overrides,
        )

    def with_validation(self, **kwargs) -> "LandingSystemConfig":
        """Copy with validation parameters overridden (used by the ablation bench)."""
        return replace(self, validation=replace(self.validation, **kwargs))

    def with_safety(self, **kwargs) -> "LandingSystemConfig":
        """Copy with safety parameters overridden."""
        return replace(self, safety=replace(self.safety, **kwargs))

    def with_components(
        self,
        detector: DetectorKind | str | None = None,
        mapper: MapperKind | str | None = None,
        planner: PlannerKind | str | None = None,
        name: str | None = None,
    ) -> "LandingSystemConfig":
        """Copy with some components swapped (clears the generation tag)."""
        return replace(
            self,
            generation=None,
            detector=detector if detector is not None else self.detector,
            mapper=mapper if mapper is not None else self.mapper,
            planner=planner if planner is not None else self.planner,
            label=name if name is not None else self.label,
        )

    # ------------------------------------------------------------------ #
    # serialization (JSON-compatible round trip)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible dict representation (see :meth:`from_dict`)."""
        return {
            "generation": self.generation.value if self.generation is not None else None,
            "detector": self.detector_key,
            "mapper": self.mapper_key,
            "planner": self.planner_key,
            "cruise_altitude": self.cruise_altitude,
            "search": asdict(self.search),
            "validation": asdict(self.validation),
            "landing": asdict(self.landing),
            "safety": asdict(self.safety),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LandingSystemConfig":
        """Rebuild a configuration from :meth:`to_dict` output.

        Missing keys fall back to defaults, so hand-written partial dicts
        (e.g. from a CLI ``--config`` JSON file) are accepted too.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown LandingSystemConfig keys: {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        kwargs: dict[str, Any] = {}
        for key, value in data.items():
            if key == "generation":
                kwargs[key] = SystemGeneration(value) if value is not None else None
            elif key in _SECTION_TYPES and isinstance(value, dict):
                kwargs[key] = _SECTION_TYPES[key](**value)
            else:
                kwargs[key] = value
        return cls(**kwargs)


def mls_v1() -> LandingSystemConfig:
    """First generation: OpenCV detection, no obstacle avoidance."""
    return LandingSystemConfig(
        generation=SystemGeneration.MLS_V1,
        detector=DetectorKind.CLASSICAL,
        mapper=MapperKind.NONE,
        planner=PlannerKind.STRAIGHT_LINE,
    )


def mls_v2() -> LandingSystemConfig:
    """Second generation: TPH-YOLO detection + EGO-Planner local avoidance."""
    return LandingSystemConfig(
        generation=SystemGeneration.MLS_V2,
        detector=DetectorKind.LEARNED,
        mapper=MapperKind.DENSE_GRID,
        planner=PlannerKind.EGO_LOCAL_ASTAR,
    )


def mls_v3() -> LandingSystemConfig:
    """Third generation: TPH-YOLO detection + OctoMap + RRT*."""
    return LandingSystemConfig(
        generation=SystemGeneration.MLS_V3,
        detector=DetectorKind.LEARNED,
        mapper=MapperKind.OCTOMAP,
        planner=PlannerKind.RRT_STAR,
    )


def config_for(generation: SystemGeneration) -> LandingSystemConfig:
    """Configuration preset for a generation enum value."""
    if generation is SystemGeneration.MLS_V1:
        return mls_v1()
    if generation is SystemGeneration.MLS_V2:
        return mls_v2()
    return mls_v3()


#: Named presets accepted by the campaign API's ``systems(...)`` call.
PRESETS = {
    "mls-v1": mls_v1,
    "mls-v2": mls_v2,
    "mls-v3": mls_v3,
}


def preset(name: str) -> LandingSystemConfig:
    """Build a preset configuration by name (``"mls-v1"`` / ``"MLS-V2"`` ...)."""
    key = name.strip().lower()
    if key not in PRESETS:
        raise ValueError(f"unknown preset {name!r}; expected one of {sorted(PRESETS)}")
    return PRESETS[key]()


def ablation_grid(
    valid_only: bool = False,
    **overrides: Any,
) -> Iterator[LandingSystemConfig]:
    """Every detector x mapper x planner combination as a custom config.

    With only the built-in components registered this is the full
    2 x 3 x 3 = 18-combination grid the paper's generations are three points
    of.  ``valid_only`` filters to combinations whose planner requirements
    are satisfied by the mapper (12 of the built-in 18).
    """
    if valid_only:
        for detector, mapper, planner in REGISTRY.valid_combinations():
            yield LandingSystemConfig.custom(detector, mapper, planner, **overrides)
        return
    detectors = [k.value for k in DetectorKind]
    mappers = [k.value for k in MapperKind]
    planners = [k.value for k in PlannerKind]
    for detector, mapper, planner in product(detectors, mappers, planners):
        yield LandingSystemConfig.custom(detector, mapper, planner, **overrides)
