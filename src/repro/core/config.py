"""Landing-system configuration and the three generation presets.

The paper evaluates three generations (§IV.B.2):

* **MLS-V1** — OpenCV-based marker detection, no obstacle avoidance.
* **MLS-V2** — TPH-YOLO detection + EGO-Planner (dense local grid, local A*).
* **MLS-V3** — TPH-YOLO detection + OctoMap + RRT*.

:func:`mls_v1`, :func:`mls_v2` and :func:`mls_v3` build the corresponding
configurations; everything else about the mission (state machine timings,
validation thresholds, safety margins) is shared, which is what makes the
comparison an ablation of detector / mapper / planner choices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class DetectorKind(enum.Enum):
    """Which marker detector the system uses."""

    CLASSICAL = "opencv"
    LEARNED = "tph-yolo"


class MapperKind(enum.Enum):
    """Which occupancy-map representation the system uses."""

    NONE = "none"
    DENSE_GRID = "dense-grid"
    OCTOMAP = "octomap"


class PlannerKind(enum.Enum):
    """Which path planner the system uses."""

    STRAIGHT_LINE = "straight-line"
    EGO_LOCAL_ASTAR = "ego-local-astar"
    RRT_STAR = "rrt-star"


class SystemGeneration(enum.Enum):
    """The three system generations evaluated in the paper."""

    MLS_V1 = "MLS-V1"
    MLS_V2 = "MLS-V2"
    MLS_V3 = "MLS-V3"


@dataclass(frozen=True)
class SearchConfig:
    """SEARCH-state behaviour."""

    search_altitude: float = 8.0
    spiral_radius: float = 15.0
    spiral_spacing: float = 4.0
    search_timeout: float = 90.0


@dataclass(frozen=True)
class ValidationConfig:
    """VALIDATION-state behaviour (the multi-frame gate)."""

    required_frames: int = 12
    required_hits: int = 7
    validation_altitude: float = 6.0
    position_consistency_radius: float = 1.5
    max_attempts: int = 3


@dataclass(frozen=True)
class LandingConfig:
    """LANDING-state behaviour."""

    descent_step: float = 1.5
    final_descent_altitude: float = 1.5
    marker_lost_tolerance: float = 4.0      # seconds without a detection before abort
    reposition_speed_limit: float = 1.5
    max_landing_attempts: int = 2


@dataclass(frozen=True)
class SafetyConfig:
    """Safety / availability dial (§III.D "Safety and Availability")."""

    obstacle_clearance: float = 0.5
    vehicle_radius: float = 0.35
    replan_check_horizon: float = 6.0
    mission_timeout: float = 240.0
    min_planning_clearance_to_descend: float = 1.0


@dataclass(frozen=True)
class LandingSystemConfig:
    """Full configuration of one landing-system generation."""

    generation: SystemGeneration
    detector: DetectorKind
    mapper: MapperKind
    planner: PlannerKind
    cruise_altitude: float = 12.0
    search: SearchConfig = field(default_factory=SearchConfig)
    validation: ValidationConfig = field(default_factory=ValidationConfig)
    landing: LandingConfig = field(default_factory=LandingConfig)
    safety: SafetyConfig = field(default_factory=SafetyConfig)

    @property
    def name(self) -> str:
        return self.generation.value

    @property
    def has_avoidance(self) -> bool:
        return self.mapper is not MapperKind.NONE

    def with_validation(self, **kwargs) -> "LandingSystemConfig":
        """Copy with validation parameters overridden (used by the ablation bench)."""
        return replace(self, validation=replace(self.validation, **kwargs))

    def with_safety(self, **kwargs) -> "LandingSystemConfig":
        """Copy with safety parameters overridden."""
        return replace(self, safety=replace(self.safety, **kwargs))


def mls_v1() -> LandingSystemConfig:
    """First generation: OpenCV detection, no obstacle avoidance."""
    return LandingSystemConfig(
        generation=SystemGeneration.MLS_V1,
        detector=DetectorKind.CLASSICAL,
        mapper=MapperKind.NONE,
        planner=PlannerKind.STRAIGHT_LINE,
    )


def mls_v2() -> LandingSystemConfig:
    """Second generation: TPH-YOLO detection + EGO-Planner local avoidance."""
    return LandingSystemConfig(
        generation=SystemGeneration.MLS_V2,
        detector=DetectorKind.LEARNED,
        mapper=MapperKind.DENSE_GRID,
        planner=PlannerKind.EGO_LOCAL_ASTAR,
    )


def mls_v3() -> LandingSystemConfig:
    """Third generation: TPH-YOLO detection + OctoMap + RRT*."""
    return LandingSystemConfig(
        generation=SystemGeneration.MLS_V3,
        detector=DetectorKind.LEARNED,
        mapper=MapperKind.OCTOMAP,
        planner=PlannerKind.RRT_STAR,
    )


def config_for(generation: SystemGeneration) -> LandingSystemConfig:
    """Configuration preset for a generation enum value."""
    if generation is SystemGeneration.MLS_V1:
        return mls_v1()
    if generation is SystemGeneration.MLS_V2:
        return mls_v2()
    return mls_v3()
