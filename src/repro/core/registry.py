"""Pluggable component registry for the landing-system composition API.

The paper's three generations (MLS-V1/V2/V3) are fixed detector x mapper x
planner triples, but nothing about the architecture requires those exact
combinations: the ablation surface is the full grid of registered components.
This module replaces the enum ``if/else`` dispatch that used to live in
:class:`~repro.core.landing_system.LandingSystem` with a string-keyed
:class:`ComponentRegistry`:

* components are registered under a *kind* (``"detector"``, ``"mapper"``,
  ``"planner"``) and a canonical string key, plus optional aliases;
* each registration declares its **nominal latency** (seconds of desktop-class
  compute per invocation) — the number the HIL resource model scales to
  Jetson-class hardware — so adding a component automatically teaches the
  scheduler its cost;
* factories receive a :class:`ComponentContext` (system config, seed, shared
  detector network, and — for planners — the already-built
  :class:`MappingStack`), so components can be wired without the core knowing
  their constructors.

Registering a custom component is one decorator::

    from repro import register_detector, ComponentContext

    @register_detector("my-detector", latency=0.02)
    def build_my_detector(ctx: ComponentContext):
        return MyDetector(seed=ctx.seed)

    config = LandingSystemConfig.custom(detector="my-detector")

Mappers declare what they *provide* (``"local_grid"``, ``"octree"``,
``"inflated"``) and planners declare what they *require*, which lets
:meth:`ComponentRegistry.valid_combinations` enumerate the buildable subset of
the full ablation grid without instantiating anything.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.config import LandingSystemConfig

#: The three component kinds a landing system is composed of.
DETECTOR = "detector"
MAPPER = "mapper"
PLANNER = "planner"
KINDS = (DETECTOR, MAPPER, PLANNER)


class ComponentError(LookupError):
    """Raised for unknown keys, duplicate registrations or unbuildable combos."""


def component_key(value: Any) -> str:
    """Canonical string key for a component selector (enum member or string)."""
    if isinstance(value, enum.Enum):
        return str(value.value)
    return str(value)


@dataclass
class MappingStack:
    """The occupancy-map products a mapper component builds.

    ``local_grid`` / ``octree`` are the raw representations (either may be
    ``None``), ``inflated`` is the collision-check view planners consume, and
    ``primary`` is the object whose :meth:`memory_bytes` feeds the resource
    model.  ``provides`` mirrors the spec's declaration so planner factories
    can give precise error messages.
    """

    local_grid: Any = None
    octree: Any = None
    inflated: Any = None
    primary: Any = None
    provides: tuple[str, ...] = ()

    def memory_bytes(self) -> int:
        # Duck-typed (like cloud integration): custom primary maps without a
        # memory model simply report zero to the resource model.
        if self.primary is not None and hasattr(self.primary, "memory_bytes"):
            return int(self.primary.memory_bytes())
        return 0


@dataclass
class ComponentContext:
    """Everything a component factory may need to build its component.

    Attributes:
        config: the full landing-system configuration being instantiated.
        seed: per-run seed (used by sampling planners).
        detector_network: optional pre-trained network shared across runs.
        mapping: the already-built :class:`MappingStack`; populated before
            planner factories run, ``None`` while the mapper itself is built.
    """

    config: "LandingSystemConfig | None" = None
    seed: int = 0
    detector_network: Any = None
    mapping: MappingStack | None = None


@dataclass(frozen=True)
class ComponentSpec:
    """One registered component: its factory plus declared characteristics."""

    kind: str
    key: str
    factory: Callable[[ComponentContext], Any]
    nominal_latency: float = 0.0
    description: str = ""
    aliases: tuple[str, ...] = ()
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def build(self, context: ComponentContext) -> Any:
        return self.factory(context)

    @property
    def provides(self) -> tuple[str, ...]:
        """Mapper capability declaration (empty for other kinds)."""
        return tuple(self.metadata.get("provides", ()))

    @property
    def requires(self) -> tuple[str, ...]:
        """Planner requirement declaration (empty for other kinds)."""
        return tuple(self.metadata.get("requires", ()))


class ComponentRegistry:
    """String-keyed registry of detector / mapper / planner components."""

    def __init__(self) -> None:
        self._specs: dict[str, dict[str, ComponentSpec]] = {kind: {} for kind in KINDS}
        self._aliases: dict[str, dict[str, str]] = {kind: {} for kind in KINDS}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(
        self,
        kind: str,
        key: str,
        *,
        latency: float = 0.0,
        aliases: tuple[str, ...] | list[str] = (),
        description: str = "",
        metadata: Mapping[str, Any] | None = None,
        overwrite: bool = False,
    ) -> Callable[[Callable[[ComponentContext], Any]], Callable[[ComponentContext], Any]]:
        """Decorator registering ``factory`` as component ``key`` of ``kind``."""
        self._check_kind(kind)
        key = component_key(key)

        def decorator(factory: Callable[[ComponentContext], Any]):
            doc = (factory.__doc__ or "").strip()
            spec = ComponentSpec(
                kind=kind,
                key=key,
                factory=factory,
                nominal_latency=latency,
                description=description or (doc.splitlines()[0] if doc else ""),
                aliases=tuple(aliases),
                metadata=dict(metadata or {}),
            )
            self.register_spec(spec, overwrite=overwrite)
            return factory

        return decorator

    def register_spec(self, spec: ComponentSpec, *, overwrite: bool = False) -> None:
        """Register an already-built :class:`ComponentSpec`."""
        self._check_kind(spec.kind)
        table = self._specs[spec.kind]
        aliases = self._aliases[spec.kind]
        if not overwrite:
            for name in (spec.key, *spec.aliases):
                if name in table or name in aliases:
                    raise ComponentError(
                        f"{spec.kind} {name!r} is already registered; "
                        f"pass overwrite=True to replace it"
                    )
        table[spec.key] = spec
        for alias in spec.aliases:
            aliases[alias] = spec.key

    def unregister(self, kind: str, key: str) -> None:
        """Remove a component (used by tests and plugin teardown)."""
        spec = self.spec(kind, key)
        del self._specs[kind][spec.key]
        for alias in spec.aliases:
            self._aliases[kind].pop(alias, None)

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def spec(self, kind: str, key: Any) -> ComponentSpec:
        """Resolve ``key`` (string, alias or enum member) to its spec."""
        self._check_kind(kind)
        name = component_key(key)
        name = self._aliases[kind].get(name, name)
        try:
            return self._specs[kind][name]
        except KeyError:
            known = ", ".join(sorted(self._specs[kind])) or "<none>"
            raise ComponentError(
                f"unknown {kind} {component_key(key)!r}; registered {kind}s: {known}"
            ) from None

    def has(self, kind: str, key: Any) -> bool:
        try:
            self.spec(kind, key)
            return True
        except ComponentError:
            return False

    def canonical_key(self, kind: str, key: Any) -> str:
        """The canonical string key ``key`` resolves to."""
        return self.spec(kind, key).key

    def keys(self, kind: str) -> tuple[str, ...]:
        self._check_kind(kind)
        return tuple(sorted(self._specs[kind]))

    def nominal_latency(self, kind: str, key: Any) -> float:
        """Declared desktop-class latency (seconds) of one component call."""
        return self.spec(kind, key).nominal_latency

    def create(self, kind: str, key: Any, context: ComponentContext | None = None) -> Any:
        """Build the component ``key`` of ``kind`` with ``context``."""
        return self.spec(kind, key).build(context or ComponentContext())

    # ------------------------------------------------------------------ #
    # ablation-grid helpers
    # ------------------------------------------------------------------ #
    def combinations(self) -> Iterator[tuple[str, str, str]]:
        """Every (detector, mapper, planner) key triple, valid or not."""
        for detector in self.keys(DETECTOR):
            for mapper in self.keys(MAPPER):
                for planner in self.keys(PLANNER):
                    yield detector, mapper, planner

    def is_valid_combination(self, mapper: Any, planner: Any) -> bool:
        """Whether ``mapper`` provides everything ``planner`` requires."""
        provided = set(self.spec(MAPPER, mapper).provides)
        return set(self.spec(PLANNER, planner).requires) <= provided

    def valid_combinations(self) -> Iterator[tuple[str, str, str]]:
        """The buildable subset of :meth:`combinations`."""
        for detector, mapper, planner in self.combinations():
            if self.is_valid_combination(mapper, planner):
                yield detector, mapper, planner

    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_kind(kind: str) -> None:
        if kind not in KINDS:
            raise ComponentError(f"unknown component kind {kind!r}; expected one of {KINDS}")


#: The process-global registry the landing system builds from.
REGISTRY = ComponentRegistry()


def register_detector(key: str, **kwargs):
    """Register a marker-detector factory on the global registry."""
    return REGISTRY.register(DETECTOR, key, **kwargs)


def register_mapper(key: str, **kwargs):
    """Register an occupancy-mapper factory on the global registry."""
    return REGISTRY.register(MAPPER, key, **kwargs)


def register_planner(key: str, **kwargs):
    """Register a path-planner factory on the global registry."""
    return REGISTRY.register(PLANNER, key, **kwargs)


# ---------------------------------------------------------------------- #
# built-in components (the paper's ablation axes)
# ---------------------------------------------------------------------- #
def _inflation_config(context: ComponentContext):
    from repro.mapping.inflation import InflationConfig

    config = context.config
    if config is None:
        return InflationConfig()
    return InflationConfig(
        vehicle_radius=config.safety.vehicle_radius,
        safety_margin=config.safety.obstacle_clearance,
    )


@register_detector(
    "opencv",
    latency=0.012,
    aliases=("classical",),
    description="OpenCV-style quad detection + ID decode (MLS-V1)",
    metadata={
        "proposes_unidentified": False,
        "needs_network": False,
        # Draws no RNG and returns no detections on frames containing only
        # ground texture, so the mission fast path may elide such frames.
        "blank_frame_silent": True,
    },
)
def _build_classical_detector(context: ComponentContext):
    from repro.perception.classical import ClassicalMarkerDetector

    return ClassicalMarkerDetector()


@register_detector(
    "tph-yolo",
    latency=0.030,
    aliases=("learned", "yolo"),
    description="Learned patch detector standing in for TPH-YOLO (MLS-V2/V3)",
    metadata={
        "proposes_unidentified": True,
        "needs_network": True,
        # The proposal stage finds nothing on texture-only frames and the
        # network is deterministic, so blank frames may be elided.
        "blank_frame_silent": True,
    },
)
def _build_learned_detector(context: ComponentContext):
    from repro.perception.learned import LearnedMarkerDetector

    return LearnedMarkerDetector(network=context.detector_network)


@register_mapper(
    "none",
    latency=0.0,
    description="No occupancy map (MLS-V1: no obstacle avoidance)",
    metadata={"provides": ()},
)
def _build_no_mapper(context: ComponentContext) -> MappingStack:
    return MappingStack()


@register_mapper(
    "dense-grid",
    latency=0.008,
    aliases=("grid", "voxel-grid"),
    description="Sliding-window dense voxel grid (MLS-V2)",
    metadata={"provides": ("local_grid", "inflated")},
)
def _build_dense_grid_mapper(context: ComponentContext) -> MappingStack:
    from repro.mapping.inflation import InflatedMap
    from repro.mapping.voxel_grid import VoxelGrid

    grid = VoxelGrid()
    inflated = InflatedMap(grid, _inflation_config(context))
    return MappingStack(
        local_grid=grid, inflated=inflated, primary=grid, provides=("local_grid", "inflated")
    )


@register_mapper(
    "octomap",
    latency=0.028,
    aliases=("octree",),
    description="Global probabilistic octree (MLS-V3)",
    metadata={"provides": ("octree", "inflated")},
)
def _build_octomap_mapper(context: ComponentContext) -> MappingStack:
    from repro.mapping.inflation import InflatedMap
    from repro.mapping.octomap import OcTree

    tree = OcTree()
    inflated = InflatedMap(tree, _inflation_config(context))
    return MappingStack(
        octree=tree, inflated=inflated, primary=tree, provides=("octree", "inflated")
    )


@register_planner(
    "straight-line",
    latency=0.001,
    aliases=("straight",),
    description="Direct start-to-goal segment, no avoidance (MLS-V1)",
    metadata={"requires": ()},
)
def _build_straight_line_planner(context: ComponentContext):
    from repro.planning.straight_line import StraightLinePlanner

    return StraightLinePlanner()


@register_planner(
    "ego-local-astar",
    latency=0.035,
    aliases=("ego", "ego-planner", "local-astar"),
    description="EGO-style bounded local A* over the dense grid (MLS-V2)",
    metadata={"requires": ("local_grid",)},
)
def _build_ego_planner(context: ComponentContext):
    from repro.planning.ego_planner import EgoLocalPlanner

    mapping = context.mapping
    if mapping is None or mapping.local_grid is None:
        raise ComponentError(
            "the 'ego-local-astar' planner requires a mapper providing a dense "
            "local grid (e.g. mapper='dense-grid')"
        )
    return EgoLocalPlanner(mapping.local_grid)


@register_planner(
    "rrt-star",
    latency=0.120,
    aliases=("rrt",),
    description="Sampling-based RRT* over the inflated occupancy map (MLS-V3)",
    metadata={"requires": ("inflated",)},
)
def _build_rrt_star_planner(context: ComponentContext):
    from repro.planning.rrt_star import RrtStarConfig, RrtStarPlanner

    mapping = context.mapping
    if mapping is None or mapping.inflated is None:
        raise ComponentError(
            "the 'rrt-star' planner requires a mapper providing an inflated "
            "occupancy map (e.g. mapper='dense-grid' or mapper='octomap')"
        )
    return RrtStarPlanner(mapping.inflated, RrtStarConfig(seed=context.seed))
