"""Execution-platform models.

The landing software runs on different compute platforms in the paper's three
experiments: a desktop (SIL), a Jetson Nano (HIL) and the same Jetson with the
additional real-time camera I/O of the real drone (real world).  The mission
runner is platform-agnostic: after every decision tick it hands the module
timings to a :class:`ExecutionPlatform`, which decides whether the platform
kept up and reports utilisation samples.

:class:`DesktopPlatform` (SIL) always keeps up; the Jetson model lives in
:mod:`repro.hil.jetson`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable


@dataclass(frozen=True)
class TickBudget:
    """What the platform managed to do within one decision period."""

    allow_replan: bool = True
    skip_mapping: bool = False
    processing_latency: float = 0.0
    cpu_utilisation: float = 0.0
    memory_mb: float = 0.0
    gpu_utilisation: float = 0.0
    deadline_missed: bool = False


@runtime_checkable
class ExecutionPlatform(Protocol):
    """Scheduling and resource model of the companion computer."""

    def schedule_tick(self, timings, tick_period: float) -> TickBudget:
        """Account for one decision tick's module workload."""
        ...


class DesktopPlatform:
    """The SIL platform: a desktop that never misses a deadline."""

    name = "desktop-sil"

    def __init__(self, memory_mb: float = 1200.0) -> None:
        self._memory_mb = memory_mb

    def schedule_tick(self, timings, tick_period: float) -> TickBudget:
        total = timings.total
        utilisation = min(1.0, total / max(tick_period, 1e-6))
        return TickBudget(
            allow_replan=True,
            skip_mapping=False,
            processing_latency=total,
            cpu_utilisation=utilisation * 0.5,
            memory_mb=self._memory_mb,
            gpu_utilisation=0.25 if timings.detection > 0.02 else 0.05,
            deadline_missed=False,
        )
