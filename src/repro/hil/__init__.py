"""Hardware-in-the-loop substrate: the Jetson Nano companion-computer model.

In the paper's HIL experiments (§IV.C.2, §V.B) the landing-system modules run
on a 4 GB Jetson Nano in MAXN power mode, with the TPH-YOLO model converted to
TensorRT.  The Nano's four CPU cores are the bottleneck: under load, planning
deadlines are missed, replans arrive late, and the collision rate rises
relative to SIL.

This package models that platform:

* :mod:`repro.hil.jetson` — the Jetson Nano resource model
  (:class:`JetsonNanoPlatform`), an :class:`~repro.core.platform.ExecutionPlatform`
  that scales the modules' nominal desktop latencies to Nano-class hardware,
  tracks CPU/GPU/memory utilisation and misses deadlines when the decision
  period is exceeded.
* :mod:`repro.hil.tensorrt` — the TensorRT-style optimisation model that
  reduces the learned detector's inference latency on the GPU.
* :mod:`repro.hil.monitor` — utilisation bookkeeping (the `tegrastats`
  substitute) used to produce Fig. 7.
"""

from repro.hil.jetson import JetsonNanoPlatform, JetsonNanoSpec
from repro.hil.tensorrt import TensorRtEngine, TensorRtOptimizationReport
from repro.hil.monitor import ResourceMonitor, UtilisationSample

__all__ = [
    "JetsonNanoPlatform",
    "JetsonNanoSpec",
    "TensorRtEngine",
    "TensorRtOptimizationReport",
    "ResourceMonitor",
    "UtilisationSample",
]
