"""TensorRT-style inference optimisation model.

"To ensure the TPH-YOLO model could be processed efficiently on the edge
device [...] we optimized and converted it to the TensorRT format, which
significantly accelerates inference on NVIDIA GPUs" (§IV.C.2).

The real conversion fuses layers and quantises weights; the observable effects
on the system are (a) a large inference-latency reduction on the GPU and (b) a
small numerical perturbation of the outputs.  :class:`TensorRtEngine` wraps a
trained :class:`~repro.perception.neural.network.MarkerPatchNet` and models
both: it quantises the weights to FP16-like precision and reports the reduced
latency the HIL platform should charge for inference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perception.neural.network import MarkerPatchNet


@dataclass(frozen=True)
class TensorRtOptimizationReport:
    """What the conversion changed."""

    parameter_count: int
    original_latency: float
    optimized_latency: float
    max_weight_error: float

    @property
    def speedup(self) -> float:
        if self.optimized_latency <= 0:
            return float("inf")
        return self.original_latency / self.optimized_latency


def _quantize_fp16(array: np.ndarray) -> np.ndarray:
    """Round-trip an array through half precision (the dominant TRT effect)."""
    return array.astype(np.float16).astype(np.float64)


class TensorRtEngine:
    """A 'compiled' marker network with quantised weights and reduced latency.

    Args:
        network: the trained FP32 network to convert.
        gpu_latency: per-frame inference latency of the optimised engine on
            the Jetson's GPU (seconds).
        cpu_latency: latency of the unoptimised network on the Jetson's CPU,
            used only for the optimisation report.
    """

    def __init__(
        self,
        network: MarkerPatchNet,
        gpu_latency: float = 0.022,
        cpu_latency: float = 0.110,
    ) -> None:
        self.gpu_latency = gpu_latency
        self.cpu_latency = cpu_latency
        self._network = MarkerPatchNet()
        original_state = network.state_dict()
        quantized_state = [_quantize_fp16(p) for p in original_state]
        self._network.load_state_dict(quantized_state)
        self._max_weight_error = max(
            float(np.max(np.abs(o - q))) for o, q in zip(original_state, quantized_state)
        )
        self._parameter_count = sum(p.size for p in original_state)

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #
    def predict_probability(self, patches: np.ndarray) -> np.ndarray:
        """Quantised inference; numerically close to the FP32 network."""
        return self._network.predict_probability(patches)

    @property
    def network(self) -> MarkerPatchNet:
        """The quantised network (drop-in replacement for the FP32 one)."""
        return self._network

    def optimization_report(self) -> TensorRtOptimizationReport:
        return TensorRtOptimizationReport(
            parameter_count=self._parameter_count,
            original_latency=self.cpu_latency,
            optimized_latency=self.gpu_latency,
            max_weight_error=self._max_weight_error,
        )
