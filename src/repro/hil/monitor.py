"""Companion-computer resource monitoring (the ``tegrastats`` substitute).

Collects per-tick utilisation samples so that the HIL and real-world
campaigns can report the quantities the paper shows in §V.B and Fig. 7:
memory use (~2.2 GB of 2.9 GB usable in HIL, more in the real-world tests),
all four CPU cores heavily utilised, and GPU load from TensorRT inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import fmean


@dataclass(frozen=True)
class UtilisationSample:
    """One monitoring sample."""

    timestamp: float
    cpu_utilisation: float      # 0-1 averaged over cores
    memory_mb: float
    gpu_utilisation: float      # 0-1
    per_core_utilisation: tuple[float, ...] = ()


@dataclass
class ResourceMonitor:
    """Accumulates utilisation samples over a run or a campaign."""

    samples: list[UtilisationSample] = field(default_factory=list)

    def record(self, sample: UtilisationSample) -> None:
        self.samples.append(sample)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def mean_cpu(self) -> float:
        return fmean(s.cpu_utilisation for s in self.samples) if self.samples else 0.0

    @property
    def peak_cpu(self) -> float:
        return max((s.cpu_utilisation for s in self.samples), default=0.0)

    @property
    def mean_memory_mb(self) -> float:
        return fmean(s.memory_mb for s in self.samples) if self.samples else 0.0

    @property
    def peak_memory_mb(self) -> float:
        return max((s.memory_mb for s in self.samples), default=0.0)

    @property
    def mean_gpu(self) -> float:
        return fmean(s.gpu_utilisation for s in self.samples) if self.samples else 0.0

    def summary(self) -> dict[str, float]:
        """The figures reported in §V.B / Fig. 7."""
        return {
            "mean_cpu_utilisation": round(self.mean_cpu, 3),
            "peak_cpu_utilisation": round(self.peak_cpu, 3),
            "mean_memory_mb": round(self.mean_memory_mb, 1),
            "peak_memory_mb": round(self.peak_memory_mb, 1),
            "mean_gpu_utilisation": round(self.mean_gpu, 3),
            "samples": float(len(self.samples)),
        }
