"""Companion-computer resource monitoring (the ``tegrastats`` substitute).

Collects per-tick utilisation samples so that the HIL and real-world
campaigns can report the quantities the paper shows in §V.B and Fig. 7:
memory use (~2.2 GB of 2.9 GB usable in HIL, more in the real-world tests),
all four CPU cores heavily utilised, and GPU load from TensorRT inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metrics import ResourceStats


@dataclass(frozen=True)
class UtilisationSample:
    """One monitoring sample."""

    timestamp: float
    cpu_utilisation: float      # 0-1 averaged over cores
    memory_mb: float
    gpu_utilisation: float      # 0-1
    per_core_utilisation: tuple[float, ...] = ()


@dataclass
class ResourceMonitor:
    """Accumulates utilisation samples over a run or a campaign.

    The mean/peak arithmetic lives in one place —
    :class:`repro.core.metrics.ResourceStats` — and the monitor delegates to
    it through :meth:`to_stats`, which is also how a run's samples flow into
    the per-run :class:`~repro.core.metrics.RunRecord`.
    """

    samples: list[UtilisationSample] = field(default_factory=list)

    def record(self, sample: UtilisationSample) -> None:
        self.samples.append(sample)

    def __len__(self) -> int:
        return len(self.samples)

    def to_stats(self) -> ResourceStats:
        """This monitor's samples as the campaign-level stats container."""
        return ResourceStats(
            cpu_utilisation_samples=[s.cpu_utilisation for s in self.samples],
            memory_mb_samples=[s.memory_mb for s in self.samples],
            gpu_utilisation_samples=[s.gpu_utilisation for s in self.samples],
        )

    @property
    def mean_cpu(self) -> float:
        return self.to_stats().mean_cpu

    @property
    def peak_cpu(self) -> float:
        return self.to_stats().peak_cpu

    @property
    def mean_memory_mb(self) -> float:
        return self.to_stats().mean_memory_mb

    @property
    def peak_memory_mb(self) -> float:
        return self.to_stats().peak_memory_mb

    @property
    def mean_gpu(self) -> float:
        return self.to_stats().mean_gpu

    def summary(self) -> dict[str, float]:
        """The figures reported in §V.B / Fig. 7."""
        stats = self.to_stats()
        return {
            "mean_cpu_utilisation": round(stats.mean_cpu, 3),
            "peak_cpu_utilisation": round(stats.peak_cpu, 3),
            "mean_memory_mb": round(stats.mean_memory_mb, 1),
            "peak_memory_mb": round(stats.peak_memory_mb, 1),
            "mean_gpu_utilisation": round(stats.mean_gpu, 3),
            "samples": float(len(self.samples)),
        }
