"""Jetson Nano execution-platform model.

The HIL campaign runs the same landing software but charges its module
workload to a Jetson-Nano-class compute budget:

* four CPU cores, shared by mapping, planning, the state machine and the OS
  (the paper: "all four CPU cores heavily utilised", CPU is "the primary
  bottleneck");
* a small GPU running TensorRT-optimised detector inference;
* ~2.9 GB of usable RAM, of which the landing system consumes ~2.2 GB.

The scheduling model is deliberately simple and mechanistic: each decision
tick's module latencies are scaled from desktop-class to Nano-class, queueing
lag accumulates when a tick's work exceeds the decision period, and while the
platform is lagging the scheduler disallows replanning and occasionally skips
a mapping update — which is how the paper explains the extra HIL collisions
("trajectories failed to create in time when the drone was heading towards a
newly discovered obstacle").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.platform import TickBudget
from repro.hil.monitor import ResourceMonitor, UtilisationSample


@dataclass(frozen=True)
class JetsonNanoSpec:
    """Hardware characteristics of the companion computer."""

    cpu_cores: int = 4
    cpu_slowdown: float = 3.2          # Nano core vs desktop core on our CPU-bound modules
    gpu_inference_latency: float = 0.022   # TensorRT-optimised detector, per frame
    usable_memory_mb: float = 2900.0
    base_memory_mb: float = 1450.0     # OS + ROS-like middleware + model weights
    memory_per_map_mb: float = 0.00015  # per occupancy-map byte, MB
    camera_io_cpu_load: float = 0.0    # extra continuous CPU load (real-world adds this)
    camera_io_memory_mb: float = 0.0   # extra buffers for live camera streams

    @staticmethod
    def real_world() -> "JetsonNanoSpec":
        """The same Nano but also handling live camera I/O (Fig. 7)."""
        return JetsonNanoSpec(camera_io_cpu_load=0.30, camera_io_memory_mb=450.0)


class JetsonNanoPlatform:
    """ExecutionPlatform implementation modelling the Jetson Nano (MAXN)."""

    name = "jetson-nano-hil"

    def __init__(
        self,
        spec: JetsonNanoSpec | None = None,
        seed: int = 0,
        monitor: ResourceMonitor | None = None,
        map_memory_provider=None,
    ) -> None:
        self.spec = spec or JetsonNanoSpec()
        self.monitor = monitor or ResourceMonitor()
        self._rng = np.random.default_rng(seed)
        self._lag = 0.0           # accumulated processing backlog, seconds
        self._time = 0.0
        self._map_memory_provider = map_memory_provider
        self.deadline_misses = 0
        self.ticks = 0

    # ------------------------------------------------------------------ #
    # ExecutionPlatform interface
    # ------------------------------------------------------------------ #
    def schedule_tick(self, timings, tick_period: float) -> TickBudget:
        """Charge one decision tick's workload to the Nano."""
        spec = self.spec
        self.ticks += 1
        self._time += tick_period

        # Detection runs on the GPU through TensorRT; everything else is CPU.
        gpu_time = spec.gpu_inference_latency if timings.detection > 0 else 0.0
        cpu_time = (timings.mapping + timings.planning) * spec.cpu_slowdown
        # State-machine / middleware overhead plus any camera I/O handling.
        cpu_time += 0.012 * spec.cpu_slowdown / 4.0
        cpu_time += spec.camera_io_cpu_load * tick_period
        # Small stochastic jitter: contention with background threads.
        cpu_time *= float(self._rng.uniform(0.92, 1.18))

        # The four cores work in parallel on different modules, but the
        # critical path (planning) is single-threaded; approximate the tick's
        # wall time as the critical path plus a parallelisable remainder.
        critical_path = max(gpu_time, timings.planning * spec.cpu_slowdown)
        parallel_work = max(0.0, cpu_time - timings.planning * spec.cpu_slowdown)
        tick_wall_time = critical_path + parallel_work / spec.cpu_cores

        self._lag = max(0.0, self._lag + tick_wall_time - tick_period)
        deadline_missed = self._lag > 0.25 * tick_period
        if deadline_missed:
            self.deadline_misses += 1

        cpu_utilisation = min(1.0, (cpu_time / spec.cpu_cores + gpu_time * 0.1) / tick_period)
        gpu_utilisation = min(1.0, gpu_time / tick_period)
        memory_mb = self._memory_mb()

        self.monitor.record(
            UtilisationSample(
                timestamp=self._time,
                cpu_utilisation=cpu_utilisation,
                memory_mb=memory_mb,
                gpu_utilisation=gpu_utilisation,
                per_core_utilisation=self._per_core(cpu_utilisation),
            )
        )

        return TickBudget(
            allow_replan=not deadline_missed,
            skip_mapping=self._lag > 0.6 * tick_period,
            processing_latency=tick_wall_time,
            cpu_utilisation=cpu_utilisation,
            memory_mb=memory_mb,
            gpu_utilisation=gpu_utilisation,
            deadline_missed=deadline_missed,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _memory_mb(self) -> float:
        spec = self.spec
        map_bytes = 0
        if self._map_memory_provider is not None:
            map_bytes = self._map_memory_provider()
        memory = (
            spec.base_memory_mb
            + spec.camera_io_memory_mb
            + map_bytes * spec.memory_per_map_mb
            + 650.0  # detector runtime, point-cloud buffers, planner state
        )
        return min(spec.usable_memory_mb, memory)

    def _per_core(self, mean_utilisation: float) -> tuple[float, ...]:
        cores = []
        for _ in range(self.spec.cpu_cores):
            cores.append(float(np.clip(mean_utilisation * self._rng.uniform(0.85, 1.15), 0.0, 1.0)))
        return tuple(cores)

    @property
    def deadline_miss_rate(self) -> float:
        if self.ticks == 0:
            return 0.0
        return self.deadline_misses / self.ticks
