"""Marker detection (the OpenCV-ArUco and TPH-YOLO substitutes).

The package is split into:

* :mod:`repro.perception.aruco` — a from-scratch ArUco-style fiducial
  dictionary: bit-pattern generation, marker rendering and ID decoding.
* :mod:`repro.perception.image_ops` — the small image-processing toolbox the
  classical detector needs (thresholding, connected components, perspective
  sampling), implemented on plain NumPy arrays.
* :mod:`repro.perception.classical` — the MLS-V1 detector: an
  adaptive-threshold / quad-extraction / bit-decode pipeline analogous to
  ``cv2.aruco.detectMarkers``.
* :mod:`repro.perception.neural` — a small convolutional network implemented
  in NumPy, trained on synthetic marker crops with augmentation.
* :mod:`repro.perception.learned` — the MLS-V2/V3 detector: proposal
  generation + neural classification + robust decode (the TPH-YOLO stand-in).
* :mod:`repro.perception.detection` — the detection result types shared with
  the decision-making module.
* :mod:`repro.perception.validation` — the multi-frame validation gate used by
  the state machine's VALIDATION state.
"""

from repro.perception.detection import Detection, DetectionFrame
from repro.perception.aruco import ArucoDictionary
from repro.perception.classical import ClassicalMarkerDetector
from repro.perception.learned import LearnedMarkerDetector
from repro.perception.validation import ValidationGate, ValidationResult

__all__ = [
    "Detection",
    "DetectionFrame",
    "ArucoDictionary",
    "ClassicalMarkerDetector",
    "LearnedMarkerDetector",
    "ValidationGate",
    "ValidationResult",
]
