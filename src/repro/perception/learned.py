"""Learned marker detector — the TPH-YOLO substitute used by MLS-V2 and V3.

The detector follows the structure of a single-class object detector adapted
to the tiny images our synthetic camera produces:

1. **Proposal generation** — high-local-contrast regions (markers are the
   most textured objects in a nadir view) plus the dark-blob candidates the
   classical pipeline uses; deliberately permissive so that degraded markers
   still produce a proposal.
2. **Neural scoring** — each proposal patch is resized to 16x16 and scored by
   the :class:`~repro.perception.neural.network.MarkerPatchNet` CNN that was
   trained with brightness / contrast / noise / occlusion augmentation.
3. **Robust decode** — accepted proposals are decoded against the ArUco
   dictionary with a relaxed error budget; when decoding fails the detection
   is still reported (with ``marker_id=None`` and the network confidence), so
   the validation stage can use spatial consistency across frames.

Like the paper's model, it does not estimate marker orientation (Table II
"models were not trained for marker orientation estimation").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.perception import image_ops
from repro.perception.aruco import ArucoDictionary, default_dictionary
from repro.perception.detection import Detection, DetectionFrame
from repro.perception.neural.network import MarkerPatchNet, PATCH_SIZE
from repro.perception.neural.training import load_pretrained_detector_net

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sensors.camera import CameraFrame


@dataclass(frozen=True)
class LearnedDetectorConfig:
    """Tuning of the learned pipeline."""

    contrast_radius: int = 3
    contrast_threshold: float = 0.055
    min_component_pixels: int = 10
    max_proposals: int = 10
    score_threshold: float = 0.55
    decode_max_errors: int = 2
    min_side_pixels: float = 5.0
    non_max_suppression_distance: float = 8.0


class LearnedMarkerDetector:
    """Proposal + CNN-scoring + robust-decode detector.

    Args:
        network: a trained :class:`MarkerPatchNet`; defaults to the shared
            pretrained instance (trains once per process).
        dictionary: fiducial dictionary for ID decoding.
        config: pipeline tuning.
    """

    #: identifier used in benchmark reports (Table II "Implementation" column)
    name = "TPH-YOLO"

    def __init__(
        self,
        network: MarkerPatchNet | None = None,
        dictionary: ArucoDictionary | None = None,
        config: LearnedDetectorConfig | None = None,
    ) -> None:
        self.network = network or load_pretrained_detector_net()
        self.dictionary = dictionary or default_dictionary()
        self.config = config or LearnedDetectorConfig()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def detect(self, frame: CameraFrame) -> DetectionFrame:
        """Run the full pipeline on one camera frame."""
        image = frame.image
        proposals = self._propose(image)
        if not proposals:
            return DetectionFrame(timestamp=frame.timestamp)

        patches = []
        for center, size in proposals:
            crop = image_ops.crop_patch(image, center, max(PATCH_SIZE, int(round(size * 1.4))))
            patches.append(image_ops.resize_patch(crop, PATCH_SIZE))
        scores = self.network.predict_probability(np.stack(patches))

        detections: list[Detection] = []
        for (center, size), score in zip(proposals, scores):
            if score < self.config.score_threshold:
                continue
            marker_id = self._decode(image, center, size)
            world_position = frame.pixel_to_ground(center[0], center[1])
            detections.append(
                Detection(
                    marker_id=marker_id,
                    pixel_center=center,
                    pixel_size=size,
                    world_position=world_position,
                    confidence=float(score),
                )
            )
        detections = self._non_max_suppression(detections)
        return DetectionFrame(timestamp=frame.timestamp, detections=detections)

    # ------------------------------------------------------------------ #
    # proposals
    # ------------------------------------------------------------------ #
    def _propose(self, image: np.ndarray) -> list[tuple[tuple[float, float], float]]:
        """Candidate (centre, size) regions ranked by local contrast."""
        cfg = self.config
        mean = image_ops.box_filter(image, cfg.contrast_radius)
        mean_sq = image_ops.box_filter(image * image, cfg.contrast_radius)
        variance = np.maximum(0.0, mean_sq - mean * mean)
        contrast = np.sqrt(variance)

        # The threshold adapts to the image's noise floor: under heavy rain or
        # fog the whole frame is speckled, so "high contrast" must mean high
        # relative to the median local contrast, not an absolute constant.
        noise_floor = float(np.median(contrast))
        threshold = max(cfg.contrast_threshold, noise_floor * 2.2)
        mask = contrast > threshold
        components = image_ops.connected_components(mask, min_size=cfg.min_component_pixels)

        proposals: list[tuple[tuple[float, float], float]] = []
        for component in components[: cfg.max_proposals]:
            geometry = image_ops.component_geometry(component)
            if geometry.side_length < cfg.min_side_pixels:
                continue
            if geometry.aspect_ratio > 3.0:
                continue
            proposals.append((geometry.centroid, geometry.side_length))
        return proposals

    # ------------------------------------------------------------------ #
    # decoding
    # ------------------------------------------------------------------ #
    def _decode(self, image: np.ndarray, center: tuple[float, float], size: float) -> int | None:
        """Attempt to decode the marker ID from the region around a detection.

        Decoding needs the marker's actual (rotated) outline, so the region
        around the proposal is re-thresholded for the dark border and the quad
        corners estimated from it — the same geometric decode the classical
        pipeline uses, but gated by the network's detection rather than by
        strict shape filters, and with a slightly larger bit-error budget.
        When the outline cannot be recovered (too few pixels, heavy glare) the
        detection is reported undecoded instead of being dropped.
        """
        h, w = image.shape
        window = int(max(PATCH_SIZE, round(size * 2.0)))
        row0 = max(0, int(round(center[0] - window / 2)))
        col0 = max(0, int(round(center[1] - window / 2)))
        row1 = min(h, row0 + window)
        col1 = min(w, col0 + window)
        region = image[row0:row1, col0:col1]
        if region.size == 0:
            return None

        dark = image_ops.adaptive_threshold(region, radius=4, offset=0.03)
        components = image_ops.connected_components(dark, min_size=8)
        if not components:
            return None
        corners = image_ops.estimate_quad_corners(components[0])
        if corners is None:
            return None

        cells = self.dictionary.bits + 2
        grid = image_ops.sample_quad_grid(region, corners, cells)
        if float(grid.max() - grid.min()) < 0.12:
            return None
        threshold = image_ops.otsu_threshold(grid)
        bits = grid > threshold
        border = np.concatenate([bits[0, :], bits[-1, :], bits[:, 0], bits[:, -1]])
        if border.sum() > 4:
            return None
        inner = bits[1:-1, 1:-1]
        match = self.dictionary.identify(inner, max_errors=self.config.decode_max_errors)
        if match is None:
            return None
        return match[0]

    # ------------------------------------------------------------------ #
    # post-processing
    # ------------------------------------------------------------------ #
    def _non_max_suppression(self, detections: list[Detection]) -> list[Detection]:
        """Keep the highest-confidence detection among overlapping ones."""
        kept: list[Detection] = []
        for detection in sorted(detections, key=lambda d: d.confidence, reverse=True):
            overlaps = False
            for existing in kept:
                dr = detection.pixel_center[0] - existing.pixel_center[0]
                dc = detection.pixel_center[1] - existing.pixel_center[1]
                if (dr * dr + dc * dc) ** 0.5 < self.config.non_max_suppression_distance:
                    overlaps = True
                    break
            if not overlaps:
                kept.append(detection)
        return kept
