"""Multi-frame marker validation (the VALIDATION state's gate).

"Once a theoretical marker is found, the UAV will hover and collect a series
of detection results across multiple frames; if a threshold is met, validation
is successful" (§III.D).  The gate accumulates detections over a window of
frames and accepts when enough of them agree on the briefed target ID (or, for
detections whose ID could not be decoded, on a spatially consistent position).

The acceptance threshold is the paper's safety/availability dial: stricter
thresholds abort more landings in poor conditions but reject decoys and
glare-induced phantoms more reliably.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.geometry import Vec3
from repro.perception.detection import Detection, DetectionFrame


class ValidationResult(enum.Enum):
    """Outcome of a validation window."""

    PENDING = "pending"
    ACCEPTED = "accepted"
    REJECTED = "rejected"


@dataclass
class ValidationGate:
    """Accumulates detections over frames and decides accept / reject.

    Attributes:
        target_marker_id: the briefed landing-pad ID.
        required_frames: total frames to collect before deciding.
        required_hits: matching detections needed within the window to accept.
        position_consistency_radius: detections without a decoded ID count as
            hits when they fall within this distance of the running position
            estimate (metres).
        accept_unidentified: whether undecoded detections may count at all
            (MLS-V1's classical detector always decodes, so it keeps this off).
    """

    target_marker_id: int
    required_frames: int = 12
    required_hits: int = 7
    position_consistency_radius: float = 1.5
    accept_unidentified: bool = True

    _frames_seen: int = field(default=0, init=False)
    _hits: int = field(default=0, init=False)
    _position_sum: Vec3 = field(default_factory=Vec3.zero, init=False)
    _position_count: int = field(default=0, init=False)
    _prior_position: Vec3 | None = field(default=None, init=False)

    # ------------------------------------------------------------------ #
    # accumulation
    # ------------------------------------------------------------------ #
    def reset(self, candidate_position: Vec3 | None = None) -> None:
        """Clear the window.

        Args:
            candidate_position: the position of the detection that triggered
                validation; used as the spatial-consistency prior until an
                identified detection provides a better estimate.
        """
        self._frames_seen = 0
        self._hits = 0
        self._position_sum = Vec3.zero()
        self._position_count = 0
        self._prior_position = candidate_position

    def observe(self, frame: DetectionFrame) -> ValidationResult:
        """Feed one detection frame; returns the current gate status."""
        self._frames_seen += 1
        hit = self._matching_detection(frame)
        if hit is not None:
            self._hits += 1
            self._position_sum = self._position_sum + hit.world_position
            self._position_count += 1

        if self._hits >= self.required_hits:
            return ValidationResult.ACCEPTED
        remaining = self.required_frames - self._frames_seen
        if self._hits + remaining < self.required_hits:
            return ValidationResult.REJECTED
        if self._frames_seen >= self.required_frames:
            return ValidationResult.REJECTED
        return ValidationResult.PENDING

    def _matching_detection(self, frame: DetectionFrame) -> Detection | None:
        identified = frame.best_for(self.target_marker_id)
        if identified is not None:
            return identified
        if not self.accept_unidentified:
            return None
        estimate = self.position_estimate() or self._prior_position
        if estimate is None:
            return None
        best: Detection | None = None
        for detection in frame.detections:
            if detection.marker_id is not None:
                # A confidently decoded *different* ID is a decoy, not a hit.
                continue
            if detection.world_position.horizontal_distance_to(estimate) <= self.position_consistency_radius:
                if best is None or detection.confidence > best.confidence:
                    best = detection
        return best

    # ------------------------------------------------------------------ #
    # outputs
    # ------------------------------------------------------------------ #
    def position_estimate(self) -> Vec3 | None:
        """Mean world position of the accepted detections so far."""
        if self._position_count == 0:
            return None
        return self._position_sum / float(self._position_count)

    @property
    def frames_seen(self) -> int:
        return self._frames_seen

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def hit_ratio(self) -> float:
        if self._frames_seen == 0:
            return 0.0
        return self._hits / self._frames_seen
