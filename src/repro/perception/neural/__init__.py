"""A small NumPy neural-network stack (the TPH-YOLO substitute's backbone).

The paper replaces OpenCV detection with TPH-YOLO, a transformer-augmented
YOLOv5 trained on simulator imagery with brightness / contrast / noise
augmentation.  Shipping a PyTorch YOLO is neither possible offline nor
necessary for the reproduction: the claim under test is *relative* — a
learned detector trained with augmentation is more robust to the degradations
(glare, fog, occlusion, low resolution) that break the classical pipeline.

This subpackage provides the pieces needed to train such a detector from
scratch in NumPy:

* :mod:`repro.perception.neural.layers` — dense / convolution / pooling /
  activation layers with forward and backward passes;
* :mod:`repro.perception.neural.network` — a small CNN classifier
  (:class:`MarkerPatchNet`) over marker-candidate patches;
* :mod:`repro.perception.neural.dataset` — synthetic patch dataset generation
  with the same augmentations the paper applies (random brightness, contrast,
  Gaussian noise, occlusion);
* :mod:`repro.perception.neural.training` — minibatch SGD training loop and
  the cached :func:`load_pretrained_detector_net` used by the learned
  detector.
"""

from repro.perception.neural.network import MarkerPatchNet
from repro.perception.neural.dataset import PatchDatasetConfig, generate_patch_dataset
from repro.perception.neural.training import (
    TrainingConfig,
    TrainingReport,
    train_marker_net,
    load_pretrained_detector_net,
)

__all__ = [
    "MarkerPatchNet",
    "PatchDatasetConfig",
    "generate_patch_dataset",
    "TrainingConfig",
    "TrainingReport",
    "train_marker_net",
    "load_pretrained_detector_net",
]
