"""The marker-patch classification network.

A small CNN that classifies a square grayscale patch as *marker* or
*background*.  Its job in the learned detector is the same as the objectness
head of TPH-YOLO: decide robustly whether a candidate region contains a
fiducial, even when glare, fog, noise or partial occlusion has destroyed the
clean black-and-white structure the classical decoder needs.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

import numpy as np

from repro.perception.neural.layers import (
    Conv2d,
    Dense,
    Flatten,
    Layer,
    MaxPool2d,
    Relu,
    SgdOptimizer,
    cross_entropy_loss,
    softmax,
)

#: Side length of the patches the network consumes.
PATCH_SIZE = 16


class MarkerPatchNet:
    """Conv-pool-conv-pool-dense binary classifier over 16x16 patches."""

    def __init__(self, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self.layers: list[Layer] = [
            Conv2d(1, 6, 3, rng),       # 16 -> 14
            Relu(),
            MaxPool2d(2),               # 14 -> 7
            Conv2d(6, 12, 3, rng),      # 7 -> 5
            Relu(),
            MaxPool2d(2),               # 5 -> 2
            Flatten(),                  # 12 * 2 * 2 = 48
            Dense(48, 24, rng),
            Relu(),
            Dense(24, 2, rng),
        ]

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #
    def forward(self, patches: np.ndarray) -> np.ndarray:
        """Logits for a batch of patches shaped ``(N, 16, 16)`` or ``(N, 1, 16, 16)``."""
        x = self._prepare(patches)
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def predict_probability(self, patches: np.ndarray) -> np.ndarray:
        """Probability that each patch contains a marker, shape ``(N,)``."""
        logits = self.forward(patches)
        return softmax(logits)[:, 1]

    def _prepare(self, patches: np.ndarray) -> np.ndarray:
        x = np.asarray(patches, dtype=float)
        if x.ndim == 2:
            x = x[None, ...]
        if x.ndim == 3:
            x = x[:, None, :, :]
        if x.shape[-1] != PATCH_SIZE or x.shape[-2] != PATCH_SIZE:
            raise ValueError(f"patches must be {PATCH_SIZE}x{PATCH_SIZE}, got {x.shape}")
        # Per-patch standardisation makes the network brightness/contrast invariant
        # on top of whatever the augmentation taught it.
        mean = x.mean(axis=(2, 3), keepdims=True)
        std = x.std(axis=(2, 3), keepdims=True) + 1e-6
        return (x - mean) / std

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def train_batch(
        self, patches: np.ndarray, labels: np.ndarray, optimizer: SgdOptimizer
    ) -> float:
        """One SGD step on a minibatch; returns the batch loss."""
        logits = self.forward(patches)
        loss, grad = cross_entropy_loss(logits, labels)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        parameters: list[tuple[np.ndarray, np.ndarray]] = []
        for layer in self.layers:
            parameters.extend(layer.parameters())
        optimizer.step(parameters)
        return loss

    def accuracy(self, patches: np.ndarray, labels: np.ndarray) -> float:
        probabilities = self.predict_probability(patches)
        predictions = (probabilities > 0.5).astype(int)
        return float((predictions == labels).mean())

    # ------------------------------------------------------------------ #
    # persistence (TensorRT-style export is modelled in repro.hil.tensorrt)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> list[np.ndarray]:
        return [param.copy() for layer in self.layers for param, _ in layer.parameters()]

    def load_state_dict(self, state: list[np.ndarray]) -> None:
        parameters = [param for layer in self.layers for param, _ in layer.parameters()]
        if len(parameters) != len(state):
            raise ValueError("state dict does not match network architecture")
        for param, saved in zip(parameters, state):
            if param.shape != saved.shape:
                raise ValueError(f"shape mismatch: {param.shape} vs {saved.shape}")
            param[...] = saved

    def save(self, path: str) -> None:
        with open(path, "wb") as handle:
            pickle.dump(self.state_dict(), handle)

    @classmethod
    def load(cls, path: str, seed: int = 0) -> "MarkerPatchNet":
        network = cls(seed=seed)
        with open(path, "rb") as handle:
            network.load_state_dict(pickle.load(handle))
        return network
