"""Neural-network layers implemented on NumPy arrays.

Each layer exposes ``forward(x)`` and ``backward(grad)`` plus a list of
``(parameter, gradient)`` pairs for the optimiser.  Shapes follow the NCHW
convention for convolutional layers and (N, features) for dense layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class Layer:
    """Base class: stateless layers only need ``forward``/``backward``."""

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """(parameter, gradient) pairs; empty for stateless layers."""
        return []


class Dense(Layer):
    """Fully connected layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator) -> None:
        scale = np.sqrt(2.0 / in_features)
        self.weight = rng.normal(0.0, scale, size=(in_features, out_features))
        self.bias = np.zeros(out_features)
        self.weight_grad = np.zeros_like(self.weight)
        self.bias_grad = np.zeros_like(self.bias)
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._input is not None, "forward must run before backward"
        self.weight_grad[...] = self._input.T @ grad
        self.bias_grad[...] = grad.sum(axis=0)
        return grad @ self.weight.T

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        return [(self.weight, self.weight_grad), (self.bias, self.bias_grad)]


class Relu(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return grad * self._mask


class Flatten(Layer):
    """NCHW -> (N, C*H*W)."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._shape is not None
        return grad.reshape(self._shape)


def _im2col(x: np.ndarray, kernel: int, stride: int) -> tuple[np.ndarray, int, int]:
    """Unfold (N, C, H, W) into (N, out_h*out_w, C*kernel*kernel) patches."""
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    cols = np.empty((n, out_h * out_w, c * kernel * kernel))
    idx = 0
    for i in range(out_h):
        for j in range(out_w):
            patch = x[:, :, i * stride : i * stride + kernel, j * stride : j * stride + kernel]
            cols[:, idx, :] = patch.reshape(n, -1)
            idx += 1
    return cols, out_h, out_w


class Conv2d(Layer):
    """2D convolution (valid padding) via im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
    ) -> None:
        fan_in = in_channels * kernel_size * kernel_size
        scale = np.sqrt(2.0 / fan_in)
        self.weight = rng.normal(0.0, scale, size=(out_channels, in_channels, kernel_size, kernel_size))
        self.bias = np.zeros(out_channels)
        self.weight_grad = np.zeros_like(self.weight)
        self.bias_grad = np.zeros_like(self.bias)
        self.kernel_size = kernel_size
        self.stride = stride
        self._cols: np.ndarray | None = None
        self._input_shape: tuple[int, ...] | None = None
        self._out_hw: tuple[int, int] = (0, 0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        cols, out_h, out_w = _im2col(x, self.kernel_size, self.stride)
        self._cols = cols
        self._out_hw = (out_h, out_w)
        flat_weight = self.weight.reshape(self.weight.shape[0], -1)
        out = cols @ flat_weight.T + self.bias
        n = x.shape[0]
        return out.transpose(0, 2, 1).reshape(n, self.weight.shape[0], out_h, out_w)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cols is not None and self._input_shape is not None
        n, out_channels, out_h, out_w = grad.shape
        grad_flat = grad.reshape(n, out_channels, out_h * out_w).transpose(0, 2, 1)

        flat_weight = self.weight.reshape(out_channels, -1)
        self.weight_grad[...] = (
            np.einsum("npk,npc->ck", self._cols, grad_flat).reshape(self.weight.shape)
        )
        self.bias_grad[...] = grad_flat.sum(axis=(0, 1))

        grad_cols = grad_flat @ flat_weight  # (N, positions, C*k*k)
        return self._col2im(grad_cols)

    def _col2im(self, grad_cols: np.ndarray) -> np.ndarray:
        n, c, h, w = self._input_shape  # type: ignore[misc]
        out_h, out_w = self._out_hw
        k, s = self.kernel_size, self.stride
        grad_input = np.zeros((n, c, h, w))
        idx = 0
        for i in range(out_h):
            for j in range(out_w):
                patch_grad = grad_cols[:, idx, :].reshape(n, c, k, k)
                grad_input[:, :, i * s : i * s + k, j * s : j * s + k] += patch_grad
                idx += 1
        return grad_input

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        return [(self.weight, self.weight_grad), (self.bias, self.bias_grad)]


class MaxPool2d(Layer):
    """2x2 max pooling with stride 2."""

    def __init__(self, size: int = 2) -> None:
        self.size = size
        self._input_shape: tuple[int, ...] | None = None
        self._max_mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        out_h, out_w = h // s, w // s
        self._input_shape = x.shape
        trimmed = x[:, :, : out_h * s, : out_w * s]
        reshaped = trimmed.reshape(n, c, out_h, s, out_w, s)
        out = reshaped.max(axis=(3, 5))
        # Mask of max positions for backward.
        expanded = out.repeat(s, axis=2).repeat(s, axis=3)
        self._max_mask = trimmed == expanded
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._input_shape is not None and self._max_mask is not None
        s = self.size
        upsampled = grad.repeat(s, axis=2).repeat(s, axis=3) * self._max_mask
        # Rows/columns trimmed off in forward (odd input sizes) get zero gradient.
        grad_input = np.zeros(self._input_shape)
        grad_input[:, :, : upsampled.shape[2], : upsampled.shape[3]] = upsampled
        return grad_input


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the usual max-subtraction for stability."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy_loss(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean cross entropy and its gradient with respect to the logits."""
    probabilities = softmax(logits)
    n = logits.shape[0]
    clipped = np.clip(probabilities[np.arange(n), labels], 1e-12, 1.0)
    loss = float(-np.log(clipped).mean())
    grad = probabilities.copy()
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


@dataclass
class SgdOptimizer:
    """Plain SGD with momentum."""

    learning_rate: float = 0.05
    momentum: float = 0.9
    _velocity: dict[int, np.ndarray] = field(default_factory=dict)

    def step(self, parameters: list[tuple[np.ndarray, np.ndarray]]) -> None:
        for index, (param, grad) in enumerate(parameters):
            velocity = self._velocity.setdefault(index, np.zeros_like(param))
            velocity *= self.momentum
            velocity -= self.learning_rate * grad
            param += velocity
