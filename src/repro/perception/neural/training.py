"""Training loop and the shared pretrained detector network.

Training the small CNN on the synthetic patch dataset takes a couple of
seconds; the result is cached per process (and optionally on disk) so every
scenario run of MLS-V2/V3 shares one model, just as the real system ships one
trained TPH-YOLO checkpoint.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.perception.neural.dataset import PatchDatasetConfig, generate_patch_dataset
from repro.perception.neural.layers import SgdOptimizer
from repro.perception.neural.network import MarkerPatchNet


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of the patch-classifier training run."""

    epochs: int = 6
    batch_size: int = 64
    learning_rate: float = 0.05
    momentum: float = 0.9
    validation_fraction: float = 0.15
    seed: int = 7
    dataset: PatchDatasetConfig = PatchDatasetConfig()


@dataclass
class TrainingReport:
    """What the training run produced."""

    epochs: int
    final_train_loss: float
    validation_accuracy: float
    train_samples: int
    validation_samples: int
    loss_history: list[float]


def train_marker_net(
    config: TrainingConfig | None = None,
    network: MarkerPatchNet | None = None,
) -> tuple[MarkerPatchNet, TrainingReport]:
    """Train a :class:`MarkerPatchNet` on the synthetic patch dataset."""
    config = config or TrainingConfig()
    rng = np.random.default_rng(config.seed)
    network = network or MarkerPatchNet(seed=config.seed)

    patches, labels = generate_patch_dataset(config.dataset, seed=config.seed)
    split = int(len(labels) * (1.0 - config.validation_fraction))
    train_x, train_y = patches[:split], labels[:split]
    val_x, val_y = patches[split:], labels[split:]

    optimizer = SgdOptimizer(learning_rate=config.learning_rate, momentum=config.momentum)
    loss_history: list[float] = []
    final_loss = float("inf")
    for _ in range(config.epochs):
        order = rng.permutation(len(train_y))
        epoch_losses = []
        for start in range(0, len(order), config.batch_size):
            batch_idx = order[start : start + config.batch_size]
            loss = network.train_batch(train_x[batch_idx], train_y[batch_idx], optimizer)
            epoch_losses.append(loss)
        final_loss = float(np.mean(epoch_losses))
        loss_history.append(final_loss)

    accuracy = network.accuracy(val_x, val_y) if len(val_y) else float("nan")
    report = TrainingReport(
        epochs=config.epochs,
        final_train_loss=final_loss,
        validation_accuracy=accuracy,
        train_samples=len(train_y),
        validation_samples=len(val_y),
        loss_history=loss_history,
    )
    return network, report


def _cache_path(seed: int) -> str:
    return os.path.join(tempfile.gettempdir(), f"repro_marker_net_{seed}.pkl")


@lru_cache(maxsize=2)
def load_pretrained_detector_net(seed: int = 7, use_disk_cache: bool = True) -> MarkerPatchNet:
    """The shared trained detector network.

    Trains on first use (a few seconds), then reuses the in-process instance;
    when ``use_disk_cache`` is set the weights are also persisted to the
    system temp directory so repeated benchmark processes skip retraining.
    """
    path = _cache_path(seed)
    if use_disk_cache and os.path.exists(path):
        try:
            return MarkerPatchNet.load(path, seed=seed)
        except (OSError, ValueError):
            # Corrupt or stale cache: retrain below.
            pass
    network, _report = train_marker_net(TrainingConfig(seed=seed))
    if use_disk_cache:
        try:
            network.save(path)
        except OSError:
            pass
    return network
