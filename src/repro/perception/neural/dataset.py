"""Synthetic training data for the marker-patch network.

The paper builds its dataset by placing markers in five AirSim maps at varied
positions, orientations, weather and altitudes, then augments with random
brightness / contrast changes and Gaussian noise (§III.A).  This module does
the equivalent directly in patch space: positive patches are rendered marker
crops at random scales, rotations and occlusions; negative patches are ground
texture, obstacle edges and near-miss structured clutter.  The same
augmentations are applied to both classes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perception.aruco import ArucoDictionary, default_dictionary
from repro.perception.neural.network import PATCH_SIZE


@dataclass(frozen=True)
class PatchDatasetConfig:
    """Knobs of the synthetic dataset generator."""

    samples_per_class: int = 1200
    min_marker_pixels: int = 7
    max_marker_pixels: int = 16
    brightness_range: tuple[float, float] = (-0.25, 0.25)
    contrast_range: tuple[float, float] = (0.5, 1.3)
    noise_std_range: tuple[float, float] = (0.0, 0.08)
    max_occlusion: float = 0.35
    glare_probability: float = 0.2
    augment: bool = True


def _render_marker_patch(
    dictionary: ArucoDictionary, marker_id: int, size_pixels: int, rotation: float, rng: np.random.Generator
) -> np.ndarray:
    """Render a marker at a given pixel size and in-plane rotation into a patch."""
    patch = np.full((PATCH_SIZE, PATCH_SIZE), 0.45 + 0.1 * rng.random())
    rows, cols = np.meshgrid(np.arange(PATCH_SIZE), np.arange(PATCH_SIZE), indexing="ij")
    center = (PATCH_SIZE - 1) / 2.0
    cos_r, sin_r = np.cos(rotation), np.sin(rotation)
    local_r = cos_r * (rows - center) - sin_r * (cols - center)
    local_c = sin_r * (rows - center) + cos_r * (cols - center)
    half = size_pixels / 2.0
    u = (local_c + half) / size_pixels
    v = (local_r + half) / size_pixels
    inside = (u >= 0) & (u <= 1) & (v >= 0) & (v <= 1)
    values = dictionary.sample_at(marker_id, np.clip(u, 0, 1), np.clip(v, 0, 1))
    values = np.where(values > 0.5, 0.92, 0.08)
    patch = np.where(inside, values, patch)
    return patch


def _render_background_patch(rng: np.random.Generator) -> np.ndarray:
    """Ground texture, edges and structured clutter that is *not* a marker."""
    kind = rng.integers(4)
    rows, cols = np.meshgrid(np.arange(PATCH_SIZE), np.arange(PATCH_SIZE), indexing="ij")
    if kind == 0:
        # Smooth ground texture.
        patch = 0.45 + 0.08 * np.sin(rows * rng.uniform(0.2, 0.8)) * np.cos(cols * rng.uniform(0.2, 0.8))
    elif kind == 1:
        # A building edge: two constant regions split by a line.
        angle = rng.uniform(0, np.pi)
        boundary = (rows - PATCH_SIZE / 2) * np.cos(angle) + (cols - PATCH_SIZE / 2) * np.sin(angle)
        patch = np.where(boundary > 0, rng.uniform(0.2, 0.4), rng.uniform(0.5, 0.8))
    elif kind == 2:
        # Checker-like clutter (near-miss: structured but not a valid code).
        cell = max(2, int(rng.integers(2, 5)))
        patch = (((rows // cell) + (cols // cell)) % 2).astype(float) * 0.6 + 0.2
    else:
        # A dark blob (shadow / rooftop corner).
        center_r, center_c = rng.uniform(4, 12, size=2)
        radius = rng.uniform(3, 8)
        distance = np.sqrt((rows - center_r) ** 2 + (cols - center_c) ** 2)
        patch = np.where(distance < radius, 0.15, 0.55)
    return patch.astype(float)


def _augment(patch: np.ndarray, config: PatchDatasetConfig, rng: np.random.Generator) -> np.ndarray:
    """Brightness / contrast jitter, Gaussian noise, occlusion band and glare."""
    out = patch.copy()
    if not config.augment:
        return np.clip(out, 0.0, 1.0)
    contrast = rng.uniform(*config.contrast_range)
    brightness = rng.uniform(*config.brightness_range)
    out = 0.5 + (out - 0.5) * contrast + brightness
    if rng.random() < 0.5 and config.max_occlusion > 0:
        width = int(PATCH_SIZE * rng.uniform(0.0, config.max_occlusion))
        if width > 0:
            if rng.random() < 0.5:
                out[:, :width] = 0.45
            else:
                out[:width, :] = 0.45
    if rng.random() < config.glare_probability:
        rows, cols = np.meshgrid(np.arange(PATCH_SIZE), np.arange(PATCH_SIZE), indexing="ij")
        center_r, center_c = rng.uniform(0, PATCH_SIZE, size=2)
        radius = rng.uniform(4, 12)
        distance = np.sqrt((rows - center_r) ** 2 + (cols - center_c) ** 2)
        out = out + np.clip(1.0 - distance / radius, 0, 1) * rng.uniform(0.3, 0.8)
    noise_std = rng.uniform(*config.noise_std_range)
    if noise_std > 0:
        out = out + rng.normal(0.0, noise_std, size=out.shape)
    return np.clip(out, 0.0, 1.0)


def generate_patch_dataset(
    config: PatchDatasetConfig | None = None,
    dictionary: ArucoDictionary | None = None,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a balanced labelled dataset of marker / background patches.

    Returns:
        ``(patches, labels)`` where ``patches`` has shape
        ``(2 * samples_per_class, PATCH_SIZE, PATCH_SIZE)`` and ``labels`` is
        1 for marker, 0 for background.
    """
    config = config or PatchDatasetConfig()
    dictionary = dictionary or default_dictionary()
    rng = np.random.default_rng(seed)

    patches = []
    labels = []
    marker_ids = list(dictionary.codes.keys())
    for _ in range(config.samples_per_class):
        marker_id = marker_ids[int(rng.integers(len(marker_ids)))]
        size = int(rng.integers(config.min_marker_pixels, config.max_marker_pixels + 1))
        rotation = rng.uniform(0, 2 * np.pi)
        patch = _render_marker_patch(dictionary, marker_id, size, rotation, rng)
        patches.append(_augment(patch, config, rng))
        labels.append(1)
    for _ in range(config.samples_per_class):
        patch = _render_background_patch(rng)
        patches.append(_augment(patch, config, rng))
        labels.append(0)

    patches_array = np.stack(patches)
    labels_array = np.array(labels, dtype=int)
    order = rng.permutation(len(labels_array))
    return patches_array[order], labels_array[order]
