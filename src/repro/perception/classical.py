"""Classical (OpenCV-style) ArUco marker detector — the MLS-V1 detector.

The pipeline mirrors ``cv2.aruco.detectMarkers``:

1. adaptive threshold to find dark regions (marker borders are black);
2. connected components and square-ness filtering to propose candidate quads;
3. corner estimation and perspective sampling of the candidate's bit grid;
4. per-cell binarisation (Otsu) and dictionary lookup with a small error
   budget.

Its weaknesses are the ones the paper reports: at high altitude the marker
covers too few pixels for reliable bit sampling, glare washes out the
threshold, occlusion corrupts the border or the bits, and fog erodes the
contrast the adaptive threshold depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.perception import image_ops
from repro.perception.aruco import ArucoDictionary, default_dictionary
from repro.perception.detection import Detection, DetectionFrame

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sensors.camera import CameraFrame


@dataclass(frozen=True)
class ClassicalDetectorConfig:
    """Tuning of the classical pipeline."""

    threshold_radius: int = 8
    threshold_offset: float = 0.04
    min_component_pixels: int = 25
    min_fill_ratio: float = 0.30
    max_aspect_ratio: float = 1.8
    min_side_pixels: float = 8.0
    max_bit_errors: int = 1
    cell_contrast_minimum: float = 0.18


class ClassicalMarkerDetector:
    """Adaptive-threshold + quad-decode fiducial detector.

    Args:
        dictionary: fiducial dictionary to decode against.
        config: pipeline tuning; the defaults reproduce OpenCV-like behaviour
            on the synthetic camera's 96x96 frames.
    """

    #: identifier used in benchmark reports (Table II "Implementation" column)
    name = "OpenCV"

    def __init__(
        self,
        dictionary: ArucoDictionary | None = None,
        config: ClassicalDetectorConfig | None = None,
    ) -> None:
        self.dictionary = dictionary or default_dictionary()
        self.config = config or ClassicalDetectorConfig()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def detect(self, frame: CameraFrame) -> DetectionFrame:
        """Run the full pipeline on one camera frame."""
        image = frame.image
        cfg = self.config

        dark_mask = image_ops.adaptive_threshold(
            image, radius=cfg.threshold_radius, offset=cfg.threshold_offset
        )
        components = image_ops.connected_components(
            dark_mask, min_size=cfg.min_component_pixels
        )

        detections: list[Detection] = []
        for component in components[:8]:
            detection = self._decode_candidate(image, component, frame)
            if detection is not None:
                detections.append(detection)

        return DetectionFrame(
            timestamp=frame.timestamp,
            detections=detections,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _decode_candidate(
        self, image: np.ndarray, component: np.ndarray, frame: CameraFrame
    ) -> Detection | None:
        cfg = self.config
        geometry = image_ops.component_geometry(component)

        # The marker border forms a dark square ring; reject blobs that are
        # too elongated, too sparse or too small to sample bits from.
        if geometry.aspect_ratio > cfg.max_aspect_ratio:
            return None
        if geometry.side_length < cfg.min_side_pixels:
            return None
        if geometry.fill_ratio < cfg.min_fill_ratio:
            return None

        corners = image_ops.estimate_quad_corners(component)
        if corners is None:
            return None

        cells = self.dictionary.bits + 2
        grid = image_ops.sample_quad_grid(image, corners, cells)

        # The sampled grid must have enough contrast to binarise; glare and
        # fog collapse it.
        contrast = float(grid.max() - grid.min())
        if contrast < cfg.cell_contrast_minimum:
            return None

        threshold = image_ops.otsu_threshold(grid)
        bits = grid > threshold

        # Border must be (mostly) black.
        border = np.concatenate([bits[0, :], bits[-1, :], bits[:, 0], bits[:, -1]])
        if border.sum() > 2:
            return None

        inner = bits[1:-1, 1:-1]
        match = self.dictionary.identify(inner, max_errors=cfg.max_bit_errors)
        if match is None:
            return None
        marker_id, _rotation = match

        center_row, center_col = geometry.centroid
        world_position = frame.pixel_to_ground(center_row, center_col)
        return Detection(
            marker_id=marker_id,
            pixel_center=(center_row, center_col),
            pixel_size=geometry.side_length,
            world_position=world_position,
            confidence=1.0,
        )
