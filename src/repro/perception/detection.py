"""Detection result types shared between perception and decision making."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Vec3


@dataclass(frozen=True)
class Detection:
    """A single marker detection in one camera frame.

    Attributes:
        marker_id: decoded marker ID, or ``None`` when the detector found a
            marker-like quad but could not decode a valid ID.
        pixel_center: (row, col) of the detected marker centre in the image.
        pixel_size: approximate side length of the marker in pixels.
        world_position: the detector's estimate of the marker centre in world
            coordinates, computed by back-projecting the pixel centre through
            the camera model at the *estimated* drone pose (so state
            estimation error propagates into it, as in the real system).
        confidence: detector confidence in [0, 1]; classical detections are
            binary (1.0), learned detections carry the network score.
    """

    marker_id: int | None
    pixel_center: tuple[float, float]
    pixel_size: float
    world_position: Vec3
    confidence: float = 1.0

    @property
    def is_decoded(self) -> bool:
        return self.marker_id is not None


@dataclass
class DetectionFrame:
    """All detections from one camera frame plus frame metadata."""

    timestamp: float
    detections: list[Detection] = field(default_factory=list)
    processing_latency: float = 0.0

    def best_for(self, marker_id: int) -> Detection | None:
        """The highest-confidence detection matching ``marker_id``."""
        candidates = [d for d in self.detections if d.marker_id == marker_id]
        if not candidates:
            return None
        return max(candidates, key=lambda d: d.confidence)

    @property
    def has_any(self) -> bool:
        return bool(self.detections)
