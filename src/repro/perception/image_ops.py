"""Minimal image-processing toolbox used by the marker detectors.

Everything operates on plain ``(H, W)`` float arrays in [0, 1].  The
functions cover exactly what the classical ArUco pipeline needs: local
(adaptive) thresholding, connected-component labelling, component geometry,
corner estimation and perspective sampling of a quadrilateral region — small,
dependency-free equivalents of the OpenCV calls the original MLS-V1 detector
relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def box_filter(image: np.ndarray, radius: int) -> np.ndarray:
    """Mean filter with a square window of ``2*radius + 1`` pixels.

    Implemented with an integral image so it is O(1) per pixel; used by the
    adaptive threshold.
    """
    if radius < 1:
        return image.copy()
    padded = np.pad(image, radius + 1, mode="edge")
    integral = padded.cumsum(axis=0).cumsum(axis=1)
    size = 2 * radius + 1
    h, w = image.shape
    top_left = integral[:h, :w]
    top_right = integral[:h, size:size + w]
    bottom_left = integral[size:size + h, :w]
    bottom_right = integral[size:size + h, size:size + w]
    window_sum = bottom_right - bottom_left - top_right + top_left
    return window_sum / float(size * size)


def adaptive_threshold(image: np.ndarray, radius: int = 8, offset: float = 0.05) -> np.ndarray:
    """Binary mask of pixels darker than their local neighbourhood mean.

    Marker borders are black on a lighter background, so the classical
    detector thresholds for *dark* regions.
    """
    local_mean = box_filter(image, radius)
    return image < (local_mean - offset)


def connected_components(mask: np.ndarray, min_size: int = 12) -> list[np.ndarray]:
    """Label 4-connected components of a boolean mask.

    Returns one boolean mask per component with at least ``min_size`` pixels,
    ordered largest first (ties keep row-major discovery order, matching the
    flood-fill reference implementation).  Implemented as union-find over
    horizontal pixel runs: rows are decomposed into runs with one vectorised
    diff, and only run adjacencies — not pixels — are walked in Python.
    """
    h, w = mask.shape
    padded = np.zeros((h, w + 2), dtype=np.int8)
    padded[:, 1:-1] = mask
    delta = np.diff(padded, axis=1)
    start_rows, start_cols = np.nonzero(delta == 1)
    end_cols = np.nonzero(delta == -1)[1]
    run_count = len(start_rows)
    if run_count == 0:
        return []

    parent = list(range(run_count))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    # Runs are emitted row-major; row_offsets[r] is the first run of row r.
    # Plain-int lists keep the union sweep out of numpy-scalar overhead.
    row_offsets = np.searchsorted(start_rows, np.arange(h + 1)).tolist()
    starts = start_cols.tolist()
    ends = end_cols.tolist()
    for row in range(h - 1):
        a, a_end = row_offsets[row], row_offsets[row + 1]
        b, b_end = row_offsets[row + 1], row_offsets[row + 2]
        while a < a_end and b < b_end:
            if starts[a] < ends[b] and starts[b] < ends[a]:
                root_a, root_b = find(a), find(b)
                if root_a != root_b:
                    parent[root_b] = root_a
            if ends[a] <= ends[b]:
                a += 1
            else:
                b += 1

    # Resolve every run to its root with vectorised pointer jumping; path
    # halving during the sweep keeps the trees shallow so this converges in
    # a couple of iterations.
    roots = np.asarray(parent, dtype=np.int64)
    while True:
        jumped = roots[roots]
        if np.array_equal(jumped, roots):
            break
        roots = jumped
    sizes = np.bincount(roots, weights=end_cols - start_cols).astype(np.int64)
    # First occurrence of each root in row-major run order is the component's
    # smallest flat pixel index — exactly where the reference flood fill
    # would seed it, so sorting first occurrences gives discovery order.
    unique_roots, first_runs = np.unique(roots, return_index=True)
    discovery = unique_roots[np.argsort(first_runs, kind="stable")]

    sized: list[tuple[int, np.ndarray]] = []
    for root in discovery:
        size = int(sizes[root])
        if size < min_size:
            continue
        component = np.zeros((h, w), dtype=bool)
        for i in np.nonzero(roots == root)[0]:
            component[start_rows[i], starts[i]:ends[i]] = True
        sized.append((size, component))
    sized.sort(key=lambda item: item[0], reverse=True)
    return [component for _, component in sized]


@dataclass(frozen=True)
class ComponentGeometry:
    """Geometric summary of a connected component."""

    centroid: tuple[float, float]
    pixel_count: int
    bounding_box: tuple[int, int, int, int]  # min_row, min_col, max_row, max_col
    fill_ratio: float
    aspect_ratio: float

    @property
    def width(self) -> int:
        return self.bounding_box[3] - self.bounding_box[1] + 1

    @property
    def height(self) -> int:
        return self.bounding_box[2] - self.bounding_box[0] + 1

    @property
    def side_length(self) -> float:
        return (self.width + self.height) / 2.0


def component_geometry(component: np.ndarray) -> ComponentGeometry:
    """Centroid, bounding box, fill ratio and aspect ratio of a component."""
    rows, cols = np.nonzero(component)
    min_row, max_row = int(rows.min()), int(rows.max())
    min_col, max_col = int(cols.min()), int(cols.max())
    height = max_row - min_row + 1
    width = max_col - min_col + 1
    pixel_count = int(component.sum())
    fill_ratio = pixel_count / float(height * width)
    aspect = max(height, width) / max(1.0, float(min(height, width)))
    return ComponentGeometry(
        centroid=(float(rows.mean()), float(cols.mean())),
        pixel_count=pixel_count,
        bounding_box=(min_row, min_col, max_row, max_col),
        fill_ratio=fill_ratio,
        aspect_ratio=aspect,
    )


def estimate_quad_corners(component: np.ndarray) -> np.ndarray | None:
    """Estimate the four corners of a roughly square component.

    Finds the component pixels that are extremal along the two diagonal
    directions (a cheap but effective corner heuristic for axis-aligned or
    rotated squares).  Returns a ``(4, 2)`` array of (row, col) corners
    ordered around the quad, or ``None`` if the component is degenerate.
    """
    rows, cols = np.nonzero(component)
    if len(rows) < 4:
        return None
    points = np.stack([rows, cols], axis=1).astype(float)
    sums = points[:, 0] + points[:, 1]
    diffs = points[:, 0] - points[:, 1]
    corners = np.array(
        [
            points[np.argmin(sums)],   # top-left-ish
            points[np.argmin(diffs)],  # top-right-ish
            points[np.argmax(sums)],   # bottom-right-ish
            points[np.argmax(diffs)],  # bottom-left-ish
        ]
    )
    # Degenerate (line-like) components produce nearly coincident corners.
    perimeter = 0.0
    for i in range(4):
        perimeter += np.linalg.norm(corners[i] - corners[(i + 1) % 4])
    if perimeter < 8.0:
        return None
    return corners


def sample_quad_grid(image: np.ndarray, corners: np.ndarray, cells: int) -> np.ndarray:
    """Sample a ``cells x cells`` grid of intensities inside a quadrilateral.

    Uses bilinear interpolation of the quad defined by four corners ordered
    (top-left, top-right, bottom-right, bottom-left); cell centres are sampled
    so the result can be thresholded into a marker bit grid.
    """
    if corners.shape != (4, 2):
        raise ValueError("corners must have shape (4, 2)")
    h, w = image.shape
    top_left, top_right, bottom_right, bottom_left = corners
    v = (np.arange(cells) + 0.5) / cells
    u = (np.arange(cells) + 0.5) / cells
    left = top_left[None, :] + (bottom_left - top_left)[None, :] * v[:, None]
    right = top_right[None, :] + (bottom_right - top_right)[None, :] * v[:, None]
    points = left[:, None, :] + (right - left)[:, None, :] * u[None, :, None]
    rows = np.clip(np.rint(points[..., 0]).astype(int), 0, h - 1)
    cols = np.clip(np.rint(points[..., 1]).astype(int), 0, w - 1)
    return image[rows, cols].astype(float)


def otsu_threshold(values: np.ndarray) -> float:
    """Otsu's method on a flat array of intensities (used to binarise cells)."""
    flat = values.ravel()
    if flat.size == 0:
        return 0.5
    hist, edges = np.histogram(flat, bins=32, range=(0.0, 1.0))
    total = flat.size
    best_threshold = 0.5
    best_variance = -1.0
    cumulative = 0
    cumulative_mean = 0.0
    global_mean = float(flat.mean())
    for i in range(32):
        cumulative += hist[i]
        if cumulative == 0 or cumulative == total:
            continue
        cumulative_mean += hist[i] * (edges[i] + edges[i + 1]) / 2.0
        weight_background = cumulative / total
        weight_foreground = 1.0 - weight_background
        mean_background = cumulative_mean / cumulative
        mean_foreground = (global_mean * total - cumulative_mean) / (total - cumulative)
        variance = weight_background * weight_foreground * (mean_background - mean_foreground) ** 2
        if variance > best_variance:
            best_variance = variance
            best_threshold = (edges[i] + edges[i + 1]) / 2.0
    return best_threshold


def crop_patch(image: np.ndarray, center: tuple[float, float], size: int) -> np.ndarray:
    """Extract a square patch (zero-padded at the borders) centred on a pixel."""
    if size < 1:
        raise ValueError("patch size must be positive")
    h, w = image.shape
    half = size / 2.0
    patch = np.zeros((size, size), dtype=float)
    row0 = int(round(center[0] - half))
    col0 = int(round(center[1] - half))
    r_lo = max(0, -row0)
    r_hi = min(size, h - row0)
    c_lo = max(0, -col0)
    c_hi = min(size, w - col0)
    if r_hi > r_lo and c_hi > c_lo:
        patch[r_lo:r_hi, c_lo:c_hi] = image[
            row0 + r_lo:row0 + r_hi, col0 + c_lo:col0 + c_hi
        ]
    return patch


def resize_patch(patch: np.ndarray, target: int) -> np.ndarray:
    """Nearest-neighbour resize of a square patch to ``target x target``."""
    if target < 1:
        raise ValueError("target size must be positive")
    h, w = patch.shape
    rows = np.clip((np.arange(target) + 0.5) * h / target, 0, h - 1).astype(int)
    cols = np.clip((np.arange(target) + 0.5) * w / target, 0, w - 1).astype(int)
    return patch[np.ix_(rows, cols)]
