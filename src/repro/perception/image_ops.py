"""Minimal image-processing toolbox used by the marker detectors.

Everything operates on plain ``(H, W)`` float arrays in [0, 1].  The
functions cover exactly what the classical ArUco pipeline needs: local
(adaptive) thresholding, connected-component labelling, component geometry,
corner estimation and perspective sampling of a quadrilateral region — small,
dependency-free equivalents of the OpenCV calls the original MLS-V1 detector
relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def box_filter(image: np.ndarray, radius: int) -> np.ndarray:
    """Mean filter with a square window of ``2*radius + 1`` pixels.

    Implemented with an integral image so it is O(1) per pixel; used by the
    adaptive threshold.
    """
    if radius < 1:
        return image.copy()
    padded = np.pad(image, radius + 1, mode="edge")
    integral = padded.cumsum(axis=0).cumsum(axis=1)
    size = 2 * radius + 1
    h, w = image.shape
    top_left = integral[:h, :w]
    top_right = integral[:h, size:size + w]
    bottom_left = integral[size:size + h, :w]
    bottom_right = integral[size:size + h, size:size + w]
    window_sum = bottom_right - bottom_left - top_right + top_left
    return window_sum / float(size * size)


def adaptive_threshold(image: np.ndarray, radius: int = 8, offset: float = 0.05) -> np.ndarray:
    """Binary mask of pixels darker than their local neighbourhood mean.

    Marker borders are black on a lighter background, so the classical
    detector thresholds for *dark* regions.
    """
    local_mean = box_filter(image, radius)
    return image < (local_mean - offset)


def connected_components(mask: np.ndarray, min_size: int = 12) -> list[np.ndarray]:
    """Label 4-connected components of a boolean mask.

    Returns one boolean mask per component with at least ``min_size`` pixels,
    ordered largest first.  Implemented with an iterative flood fill (BFS) to
    avoid recursion limits on large blobs.
    """
    visited = np.zeros_like(mask, dtype=bool)
    components: list[np.ndarray] = []
    h, w = mask.shape
    for start_row in range(h):
        for start_col in range(w):
            if not mask[start_row, start_col] or visited[start_row, start_col]:
                continue
            stack = [(start_row, start_col)]
            visited[start_row, start_col] = True
            pixels = []
            while stack:
                row, col = stack.pop()
                pixels.append((row, col))
                for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    nr, nc = row + dr, col + dc
                    if 0 <= nr < h and 0 <= nc < w and mask[nr, nc] and not visited[nr, nc]:
                        visited[nr, nc] = True
                        stack.append((nr, nc))
            if len(pixels) >= min_size:
                component = np.zeros_like(mask, dtype=bool)
                rows, cols = zip(*pixels)
                component[list(rows), list(cols)] = True
                components.append(component)
    components.sort(key=lambda c: int(c.sum()), reverse=True)
    return components


@dataclass(frozen=True)
class ComponentGeometry:
    """Geometric summary of a connected component."""

    centroid: tuple[float, float]
    pixel_count: int
    bounding_box: tuple[int, int, int, int]  # min_row, min_col, max_row, max_col
    fill_ratio: float
    aspect_ratio: float

    @property
    def width(self) -> int:
        return self.bounding_box[3] - self.bounding_box[1] + 1

    @property
    def height(self) -> int:
        return self.bounding_box[2] - self.bounding_box[0] + 1

    @property
    def side_length(self) -> float:
        return (self.width + self.height) / 2.0


def component_geometry(component: np.ndarray) -> ComponentGeometry:
    """Centroid, bounding box, fill ratio and aspect ratio of a component."""
    rows, cols = np.nonzero(component)
    min_row, max_row = int(rows.min()), int(rows.max())
    min_col, max_col = int(cols.min()), int(cols.max())
    height = max_row - min_row + 1
    width = max_col - min_col + 1
    pixel_count = int(component.sum())
    fill_ratio = pixel_count / float(height * width)
    aspect = max(height, width) / max(1.0, float(min(height, width)))
    return ComponentGeometry(
        centroid=(float(rows.mean()), float(cols.mean())),
        pixel_count=pixel_count,
        bounding_box=(min_row, min_col, max_row, max_col),
        fill_ratio=fill_ratio,
        aspect_ratio=aspect,
    )


def estimate_quad_corners(component: np.ndarray) -> np.ndarray | None:
    """Estimate the four corners of a roughly square component.

    Finds the component pixels that are extremal along the two diagonal
    directions (a cheap but effective corner heuristic for axis-aligned or
    rotated squares).  Returns a ``(4, 2)`` array of (row, col) corners
    ordered around the quad, or ``None`` if the component is degenerate.
    """
    rows, cols = np.nonzero(component)
    if len(rows) < 4:
        return None
    points = np.stack([rows, cols], axis=1).astype(float)
    sums = points[:, 0] + points[:, 1]
    diffs = points[:, 0] - points[:, 1]
    corners = np.array(
        [
            points[np.argmin(sums)],   # top-left-ish
            points[np.argmin(diffs)],  # top-right-ish
            points[np.argmax(sums)],   # bottom-right-ish
            points[np.argmax(diffs)],  # bottom-left-ish
        ]
    )
    # Degenerate (line-like) components produce nearly coincident corners.
    perimeter = 0.0
    for i in range(4):
        perimeter += np.linalg.norm(corners[i] - corners[(i + 1) % 4])
    if perimeter < 8.0:
        return None
    return corners


def sample_quad_grid(image: np.ndarray, corners: np.ndarray, cells: int) -> np.ndarray:
    """Sample a ``cells x cells`` grid of intensities inside a quadrilateral.

    Uses bilinear interpolation of the quad defined by four corners ordered
    (top-left, top-right, bottom-right, bottom-left); cell centres are sampled
    so the result can be thresholded into a marker bit grid.
    """
    if corners.shape != (4, 2):
        raise ValueError("corners must have shape (4, 2)")
    h, w = image.shape
    grid = np.zeros((cells, cells), dtype=float)
    top_left, top_right, bottom_right, bottom_left = corners
    for row in range(cells):
        v = (row + 0.5) / cells
        left = top_left + (bottom_left - top_left) * v
        right = top_right + (bottom_right - top_right) * v
        for col in range(cells):
            u = (col + 0.5) / cells
            point = left + (right - left) * u
            r = min(h - 1, max(0, int(round(point[0]))))
            c = min(w - 1, max(0, int(round(point[1]))))
            grid[row, col] = image[r, c]
    return grid


def otsu_threshold(values: np.ndarray) -> float:
    """Otsu's method on a flat array of intensities (used to binarise cells)."""
    flat = values.ravel()
    if flat.size == 0:
        return 0.5
    hist, edges = np.histogram(flat, bins=32, range=(0.0, 1.0))
    total = flat.size
    best_threshold = 0.5
    best_variance = -1.0
    cumulative = 0
    cumulative_mean = 0.0
    global_mean = float(flat.mean())
    for i in range(32):
        cumulative += hist[i]
        if cumulative == 0 or cumulative == total:
            continue
        cumulative_mean += hist[i] * (edges[i] + edges[i + 1]) / 2.0
        weight_background = cumulative / total
        weight_foreground = 1.0 - weight_background
        mean_background = cumulative_mean / cumulative
        mean_foreground = (global_mean * total - cumulative_mean) / (total - cumulative)
        variance = weight_background * weight_foreground * (mean_background - mean_foreground) ** 2
        if variance > best_variance:
            best_variance = variance
            best_threshold = (edges[i] + edges[i + 1]) / 2.0
    return best_threshold


def crop_patch(image: np.ndarray, center: tuple[float, float], size: int) -> np.ndarray:
    """Extract a square patch (zero-padded at the borders) centred on a pixel."""
    if size < 1:
        raise ValueError("patch size must be positive")
    h, w = image.shape
    half = size / 2.0
    patch = np.zeros((size, size), dtype=float)
    row0 = int(round(center[0] - half))
    col0 = int(round(center[1] - half))
    for r in range(size):
        src_r = row0 + r
        if src_r < 0 or src_r >= h:
            continue
        for c in range(size):
            src_c = col0 + c
            if 0 <= src_c < w:
                patch[r, c] = image[src_r, src_c]
    return patch


def resize_patch(patch: np.ndarray, target: int) -> np.ndarray:
    """Nearest-neighbour resize of a square patch to ``target x target``."""
    if target < 1:
        raise ValueError("target size must be positive")
    h, w = patch.shape
    rows = np.clip((np.arange(target) + 0.5) * h / target, 0, h - 1).astype(int)
    cols = np.clip((np.arange(target) + 0.5) * w / target, 0, w - 1).astype(int)
    return patch[np.ix_(rows, cols)]
