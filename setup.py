"""Legacy setup shim.

The evaluation environment has no network access and no ``wheel`` package, so
PEP 517 editable installs (which need ``bdist_wheel``) fail.  This shim lets
``pip install -e . --no-build-isolation`` (or ``python setup.py develop``)
fall back to the legacy editable-install path using the metadata from
``pyproject.toml``.
"""

from setuptools import setup

setup()
