"""Micro-benchmarks of the hot paths (render, detect, map, plan).

These are conventional pytest-benchmark timings; they do not correspond to a
paper table but document where the simulation time goes and guard against
performance regressions.

Besides pytest-benchmark's own terminal table, every timing lands in the
machine-readable ``BENCH_results.json`` (see ``conftest.py``; path
overridable via ``$REPRO_BENCH_RESULTS``) so the perf trajectory can be
tracked across commits without parsing pytest output.
"""

import pytest

from repro.geometry import Pose, Vec3
from repro.mapping.inflation import InflatedMap
from repro.mapping.octomap import OcTree
from repro.perception.classical import ClassicalMarkerDetector
from repro.perception.learned import LearnedMarkerDetector
from repro.perception.neural.training import load_pretrained_detector_net
from repro.planning.rrt_star import RrtStarConfig, RrtStarPlanner
from repro.planning.types import PlanningProblem
from repro.sensors.camera import DownwardCamera
from repro.sensors.depth import DepthCamera
from repro.world.scenario_suite import build_evaluation_suite


@pytest.fixture(scope="module")
def scenario_world():
    suite = build_evaluation_suite()
    scenario = suite.scenarios[0]
    return scenario, scenario.build_world()


@pytest.fixture(scope="module")
def marker_frame(scenario_world):
    scenario, world = scenario_world
    camera = DownwardCamera(seed=1)
    return camera.capture(world, Pose.at(scenario.marker_position.with_z(6.0)))


def test_perf_camera_render(benchmark, scenario_world):
    scenario, world = scenario_world
    camera = DownwardCamera(seed=2)
    pose = Pose.at(scenario.marker_position.with_z(8.0))
    frame = benchmark(camera.capture, world, pose)
    assert frame.image.shape == (128, 128)


def test_perf_classical_detection(benchmark, marker_frame):
    detector = ClassicalMarkerDetector()
    result = benchmark(detector.detect, marker_frame)
    assert result is not None


def test_perf_learned_detection(benchmark, marker_frame):
    detector = LearnedMarkerDetector(network=load_pretrained_detector_net())
    result = benchmark(detector.detect, marker_frame)
    assert result is not None


def test_perf_depth_capture_and_octree_fusion(benchmark, scenario_world):
    scenario, world = scenario_world
    camera = DepthCamera(facing="forward", seed=3)
    pose = Pose.at(Vec3(0, 0, 10))

    def capture_and_fuse():
        tree = OcTree()
        cloud = camera.capture(world, pose)
        tree.integrate_cloud(cloud)
        return tree

    tree = benchmark(capture_and_fuse)
    assert tree.integration_count == 1


def test_perf_rrt_star_plan(benchmark, scenario_world):
    scenario, world = scenario_world
    tree = OcTree()
    camera = DepthCamera(facing="forward", seed=4)
    for x in range(-3, 4):
        tree.integrate_cloud(camera.capture(world, Pose.at(Vec3(4.0 * x, 0, 10))))
    planner = RrtStarPlanner(InflatedMap(tree), RrtStarConfig(seed=1, max_iterations=300))
    problem = PlanningProblem(
        start=Vec3(0, 0, 12), goal=scenario.gps_target.with_z(12.0), time_budget=1.0
    )
    result = benchmark(planner.plan, problem)
    assert result.iterations > 0
