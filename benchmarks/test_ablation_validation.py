"""Ablation (§III.D): the validation threshold's safety/availability dial."""

import numpy as np

from repro.geometry import Vec3
from repro.perception.detection import Detection, DetectionFrame
from repro.perception.validation import ValidationGate, ValidationResult


def simulate_gate(required_hits, hit_probability, decoy, frames=12, trials=60, seed=0):
    """Monte-Carlo acceptance rate of the gate under a given detection reliability."""
    rng = np.random.default_rng(seed)
    accepted = 0
    for _ in range(trials):
        gate = ValidationGate(
            target_marker_id=7, required_frames=frames, required_hits=required_hits
        )
        gate.reset(candidate_position=Vec3.zero())
        result = ValidationResult.PENDING
        for _ in range(frames):
            detections = []
            if rng.random() < hit_probability:
                marker_id = 3 if decoy else 7
                detections.append(
                    Detection(
                        marker_id=marker_id,
                        pixel_center=(64, 64),
                        pixel_size=10,
                        world_position=Vec3(0.2, 0, 0),
                        confidence=0.9,
                    )
                )
            result = gate.observe(DetectionFrame(timestamp=0.0, detections=detections))
            if result is not ValidationResult.PENDING:
                break
        accepted += result is ValidationResult.ACCEPTED
    return accepted / trials


def test_ablation_validation_threshold_sweep(benchmark):
    """Stricter thresholds trade availability (true-marker acceptance) for safety."""
    def sweep():
        rows = []
        for required_hits in (3, 5, 7, 9, 11):
            clear = simulate_gate(required_hits, hit_probability=0.85, decoy=False)
            degraded = simulate_gate(required_hits, hit_probability=0.45, decoy=False)
            decoy = simulate_gate(required_hits, hit_probability=0.9, decoy=True)
            rows.append((required_hits, clear, degraded, decoy))
        return rows

    rows = benchmark(sweep)
    print("\nValidation threshold sweep (accept rate):")
    print("  hits | clear weather | degraded detection | decoy")
    for required_hits, clear, degraded, decoy in rows:
        print(f"  {required_hits:4d} | {clear:13.2f} | {degraded:18.2f} | {decoy:5.2f}")

    # Safety: decoys are never accepted (IDs don't match).
    assert all(row[3] == 0.0 for row in rows)
    # Availability: acceptance under degraded detection falls as the threshold rises.
    assert rows[0][2] >= rows[-1][2]
    # Clear-weather acceptance stays high for the paper's operating point (7/12).
    assert rows[2][1] > 0.8
