"""Ablation (§III.A): augmentation's contribution to detector robustness."""

import numpy as np

from repro.perception.neural.dataset import PatchDatasetConfig, generate_patch_dataset
from repro.perception.neural.training import TrainingConfig, train_marker_net


def degraded_test_set(seed=123, samples=300):
    """Patches with heavy brightness / noise / occlusion degradation."""
    config = PatchDatasetConfig(
        samples_per_class=samples // 2,
        brightness_range=(-0.35, 0.35),
        contrast_range=(0.4, 1.1),
        noise_std_range=(0.05, 0.12),
        max_occlusion=0.4,
        glare_probability=0.5,
    )
    return generate_patch_dataset(config, seed=seed)


def train(augment, seed=31):
    dataset = PatchDatasetConfig(samples_per_class=500, augment=augment)
    config = TrainingConfig(epochs=4, dataset=dataset, seed=seed)
    network, report = train_marker_net(config)
    return network, report


def test_ablation_augmentation_improves_robustness(benchmark):
    """Training with augmentation improves accuracy on degraded imagery."""
    patches, labels = degraded_test_set()

    augmented_net, _ = benchmark(train, True)
    plain_net, _ = train(augment=False)

    augmented_accuracy = augmented_net.accuracy(patches, labels)
    plain_accuracy = plain_net.accuracy(patches, labels)
    print(
        f"\nDetector ablation on degraded patches: with augmentation {augmented_accuracy:.3f}, "
        f"without augmentation {plain_accuracy:.3f}"
    )
    assert augmented_accuracy >= plain_accuracy - 0.02
    assert augmented_accuracy > 0.75
