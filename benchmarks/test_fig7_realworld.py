"""Fig. 7 + §V.C: real-world (field) campaign — resources and landing accuracy."""

from repro.bench.tables import render_landing_accuracy, render_resource_summary


def test_fig7_resource_usage_exceeds_hil(benchmark, field_campaign_result, hil_campaign_result):
    """Fig. 7: RAM and CPU noticeably higher than HIL (live camera feeds)."""
    summary = benchmark(
        render_resource_summary, field_campaign_result, "Fig. 7: Real-world Jetson Nano performance"
    )
    print("\n" + summary)
    field = field_campaign_result.resource_stats
    hil = hil_campaign_result.resource_stats
    assert field.mean_memory_mb > hil.mean_memory_mb
    assert field.mean_cpu > hil.mean_cpu


def test_realworld_landing_accuracy_degrades(benchmark, field_campaign_result, sil_campaign_results):
    """§V.C: real-world landing error larger than SIL (paper: 60 cm vs 25 cm)."""
    table = benchmark(
        render_landing_accuracy, sil_campaign_results["MLS-V3"], field_campaign_result
    )
    print("\n" + table)
    # Success-only means: §V.C's comparison (60 cm real-world vs 25 cm SIL)
    # is about landings that worked, and the all-landed mean is swamped by
    # metre-scale poor-landing outliers at this campaign size.
    sil_error = sil_campaign_results["MLS-V3"].success_mean_landing_error
    field_error = field_campaign_result.success_mean_landing_error
    if field_error == field_error and sil_error == sil_error:
        assert field_error >= sil_error * 0.8  # wind + GPS drift should not improve accuracy
