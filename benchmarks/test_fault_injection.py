"""Fault-injection benches: harness overhead and fault-campaign throughput.

Two questions, both recorded into ``BENCH_results.json``:

* **Injection overhead** — a nominal campaign with a *no-op* fault harness
  attached (every spec armed with probability 0, so the hooks run on every
  tick but never perturb anything) must cost < 5% over the same campaign
  with no harness at all.  The hooks sit on the per-tick hot path of every
  future fault campaign, so this is the number that must not regress.
* **Fault-campaign throughput** — runs/sec of a real fault campaign (the
  ``smoke`` fault preset), for the perf trajectory.

Timing uses the best of several rounds, which is robust against scheduler
noise on shared CI runners.
"""

import time

from repro.bench.campaign import Campaign
from repro.core.config import mls_v1
from repro.core.mission import MissionConfig
from repro.faults.spec import FAULT_MODES, FaultSpec
from repro.world.scenario_gen import generate_suite

SUITE_PRESET = "smoke"
SUITE_COUNT = 2
SUITE_SEED = 7
ROUNDS = 3
#: Bounded missions keep a round at a few seconds without changing the
#: per-tick hook cost being measured.
MISSION = MissionConfig(max_mission_time=60.0)

#: One disarmed spec per target: every harness hook path stays exercised
#: (filter_frame, filter_cloud, filter_estimate, wrappers, corrupt_mapping,
#: filter_command, adjust_timings) while probability=0 keeps all of them
#: no-ops — the harness tax with none of the fault effects.
NOOP_FAULTS = tuple(
    FaultSpec(target=target, mode=modes[0], probability=0.0)
    for target, modes in sorted(FAULT_MODES.items())
)


def _campaign():
    return (
        Campaign(mls_v1())
        .suite(generate_suite(SUITE_PRESET, count=SUITE_COUNT, seed=SUITE_SEED))
        .repetitions(1)
        .mission(MISSION)
    )


def _best_of(run, rounds=ROUNDS):
    best = float("inf")
    results = None
    for _ in range(rounds):
        start = time.perf_counter()
        results = run()
        best = min(best, time.perf_counter() - start)
    return results, best


def test_noop_harness_overhead_under_5_percent(bench_results):
    baseline_results, baseline_s = _best_of(lambda: _campaign().run())
    noop_results, noop_s = _best_of(lambda: _campaign().faults(*NOOP_FAULTS).run())

    # A disarmed harness must not change any outcome, only (bounded) cost.
    for name, reference in baseline_results.items():
        harnessed = noop_results[name]
        assert [r.outcome for r in harnessed.records] == [
            r.outcome for r in reference.records
        ]
        assert all(
            not fault["armed"] for r in harnessed.records for fault in r.injected_faults
        )

    overhead = noop_s / baseline_s - 1.0
    bench_results(
        "fault_harness_noop_overhead",
        baseline_s=baseline_s,
        noop_harness_s=noop_s,
        overhead_fraction=overhead,
    )
    assert overhead < 0.05, (
        f"no-op fault harness costs {100.0 * overhead:.1f}% over a bare campaign "
        f"({noop_s:.2f}s vs {baseline_s:.2f}s); the injection hooks must stay "
        f"under 5%"
    )


def test_fault_campaign_throughput(bench_results):
    results, elapsed = _best_of(
        lambda: _campaign().faults("smoke").run(), rounds=1
    )
    runs = sum(len(result) for result in results.values())
    assert runs == SUITE_COUNT
    bench_results(
        "fault_campaign_smoke",
        runs=float(runs),
        seconds=elapsed,
        runs_per_s=runs / elapsed,
    )
