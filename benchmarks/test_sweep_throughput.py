"""Fault-space sweep throughput: probe evaluations per second.

Times a real-mission severity sweep (one fault spec, a two-point ladder,
the fixed-seed single-scenario smoke suite) through the dispatch probe
backend and records probe-evals/s and runs/s into ``BENCH_results.json``.
The probe backend's cost over a bare dispatched campaign is planning +
merge + curve accumulation per probe, so this number tracks the search
engine's scheduling overhead as well as raw mission throughput.

A second timed pass over the same backend tree must be pure cache (every
probe memoized / served from merged records) — the bench asserts it does
no mission work and records the replay rate separately.
"""

import time

from repro.core.config import mls_v1
from repro.faults.search import DispatchProbeBackend, run_sweep, severity_ladder
from repro.faults.spec import FAULT_PRESETS
from repro.world.scenario_gen import generate_suite

SUITE_PRESET = "smoke"
SUITE_COUNT = 1
SUITE_SEED = 7
LADDER_POINTS = 2


def test_sweep_probe_throughput(bench_results, tmp_path):
    suite = generate_suite(SUITE_PRESET, count=SUITE_COUNT, seed=SUITE_SEED)
    spec = FAULT_PRESETS["smoke"][0]
    severities = severity_ladder(LADDER_POINTS)
    backend = DispatchProbeBackend(
        tmp_path / "probes", suite, [mls_v1()], repetitions=1
    )

    start = time.perf_counter()
    result = run_sweep(backend, [spec], severities, out_dir=tmp_path / "sweep")
    cold_s = time.perf_counter() - start

    probes = len(severities)
    runs = sum(point.runs for point in result.points)
    assert len(result.points) == probes
    assert runs == probes * SUITE_COUNT

    start = time.perf_counter()
    replay = run_sweep(backend, [spec], severities, out_dir=tmp_path / "sweep")
    warm_s = time.perf_counter() - start
    assert replay.points == result.points

    bench_results(
        "sweep_probes",
        probes=float(probes),
        runs=float(runs),
        seconds=cold_s,
        probe_evals_per_s=probes / cold_s,
        runs_per_s=runs / cold_s,
        replay_seconds=warm_s,
        replay_probe_evals_per_s=probes / warm_s,
    )
