"""Ablation (§III.B): dense grid vs octree — memory and update cost."""

from repro.geometry import Pose, Vec3
from repro.mapping.octomap import OcTree
from repro.mapping.voxel_grid import VoxelGrid, VoxelGridConfig
from repro.sensors.depth import DepthCamera
from repro.world.map_generator import MapStyle, generate_map


def _clouds(count=10):
    world = generate_map(MapStyle.URBAN, seed=9)
    camera = DepthCamera(facing="forward", seed=1)
    clouds = []
    for i in range(count):
        pose = Pose.at(Vec3(-20 + 4 * i, 0, 10), yaw=0.0)
        clouds.append(camera.capture(world, pose, timestamp=float(i)))
    return clouds


def test_ablation_octree_memory_vs_dense_grid(benchmark):
    """OctoMap's memory advantage over the dense grid for the same observations."""
    clouds = _clouds()

    def build_octree():
        tree = OcTree()
        for cloud in clouds:
            tree.integrate_cloud(cloud)
        return tree

    tree = benchmark(build_octree)

    grid = VoxelGrid(VoxelGridConfig(window_size=120.0, height=40.0, resolution=0.5))
    for cloud in clouds:
        grid.integrate_cloud(cloud)

    print(
        f"\nMapping ablation: octree {tree.memory_bytes() / 1e6:.2f} MB "
        f"({tree.occupied_voxel_count()} occupied voxels) vs dense grid covering the same "
        f"area {grid.memory_bytes() / 1e6:.2f} MB"
    )
    assert tree.memory_bytes() < grid.memory_bytes()


def test_ablation_grid_is_faster_per_integration_but_local(benchmark):
    """The dense grid updates faster but only covers a sliding window."""
    clouds = _clouds()
    grid = VoxelGrid()

    def integrate_all():
        for cloud in clouds:
            grid.integrate_cloud(cloud)

    benchmark(integrate_all)
    # Observations taken 40 m ago fall outside the (re-centred) window.
    grid.recenter(Vec3(60, 0, 0))
    assert grid.occupied_voxel_count() == 0
