"""Table I + Table II: SIL campaign results for MLS-V1/V2/V3.

Reproduces the paper's RQ1 experiment: every system generation flies the same
scenario suite in SIL; outcomes are classified as success / collision failure /
poor-landing failure, and detection false negatives are scored per frame.
"""

from repro.bench.tables import render_detection_table, render_landing_accuracy, render_landing_table


def test_table1_sil_landing_outcomes(benchmark, sil_campaign_results):
    """Regenerate Table I and check the headline shape (V3 > V2 > V1)."""
    table = benchmark(render_landing_table, sil_campaign_results)
    print("\n" + table)

    v1 = sil_campaign_results["MLS-V1"]
    v2 = sil_campaign_results["MLS-V2"]
    v3 = sil_campaign_results["MLS-V3"]
    # Shape claims from the paper (not absolute values).
    assert v3.success_rate >= v2.success_rate >= v1.success_rate
    assert v3.collision_failure_rate <= v1.collision_failure_rate
    assert v1.collision_failure_rate >= v1.poor_landing_failure_rate or v1.collision_failure_rate > 0.2


def test_table2_marker_detection(benchmark, sil_campaign_results):
    """Regenerate Table II: false-negative rate per detector."""
    table = benchmark(render_detection_table, sil_campaign_results)
    print("\n" + table)

    v1_fn = sil_campaign_results["MLS-V1"].false_negative_rate
    v3_fn = sil_campaign_results["MLS-V3"].false_negative_rate
    assert v3_fn <= v1_fn  # learned detection misses fewer marker-visible frames


def test_sil_landing_accuracy(benchmark, sil_campaign_results):
    """§V.C reference point: SIL landing error (paper ~0.25 m).

    Measured over *successful* landings (``success_mean_landing_error``),
    which is the paper's quantity: the all-landed mean also averages poor
    landings that touched down metres away (e.g. on a decoy), and at bench
    campaign sizes one such outlier swamps the centimetre-scale signal.
    """
    table = benchmark(render_landing_accuracy, sil_campaign_results["MLS-V3"], None)
    print("\n" + table)
    error = sil_campaign_results["MLS-V3"].success_mean_landing_error
    assert error == error, "no successful landings to measure"
    assert error < 1.0
