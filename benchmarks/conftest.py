"""Shared fixtures for the benchmark harness.

The campaigns are executed once per pytest session (module-scoped fixtures
would re-run them per file) and then rendered by the individual benches.
Campaign size is controlled by REPRO_BENCH_SCENARIOS / REPRO_BENCH_REPETITIONS;
the defaults keep the whole benchmark suite at roughly ten minutes of wall
clock, while 100 / 3 reproduces the paper-scale campaign.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench.campaign import CampaignConfig, run_campaign, run_field_campaign, run_hil_campaign  # noqa: E402


_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


def pytest_collection_modifyitems(items):
    """Every benchmark runs a campaign: mark them all slow for -m filtering.

    This hook receives the *whole* session's items (conftest hooks are not
    directory-scoped), so restrict the marker to items collected from this
    directory — otherwise ``-m "not slow"`` deselects the entire test suite.
    """
    for item in items:
        if str(item.fspath).startswith(_BENCH_DIR + os.sep):
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def sil_campaign_results():
    """RQ1: the SIL campaign over MLS-V1/V2/V3."""
    return run_campaign(campaign_config=CampaignConfig())


@pytest.fixture(scope="session")
def hil_campaign_result():
    """RQ2: the HIL campaign (MLS-V3 on the Jetson Nano model)."""
    return run_hil_campaign(campaign_config=CampaignConfig())


@pytest.fixture(scope="session")
def field_campaign_result():
    """RQ3: the real-world (field) campaign."""
    config = CampaignConfig()
    config.scenario_count = max(4, config.scenario_count // 2)
    return run_field_campaign(campaign_config=config)
