"""Shared fixtures for the benchmark harness.

The campaigns are executed once per pytest session (module-scoped fixtures
would re-run them per file) and then rendered by the individual benches.
Campaign size is controlled by REPRO_BENCH_SCENARIOS / REPRO_BENCH_REPETITIONS;
the defaults keep the whole benchmark suite at roughly ten minutes of wall
clock, while 100 / 3 reproduces the paper-scale campaign.

This conftest also owns ``BENCH_results.json`` (path overridable via
``$REPRO_BENCH_RESULTS``): pytest-benchmark timings are harvested
automatically for every bench in this directory, other modules record custom
stats through the ``bench_results`` fixture, and the file is merged on write
— one ``suites`` section per benchmark module — so running the microbenches
and the campaign-throughput bench in separate sessions never clobbers the
other's numbers.
"""

import json
import os
import sys
from pathlib import Path

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench.campaign import CampaignConfig, run_campaign, run_field_campaign, run_hil_campaign  # noqa: E402


_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


# --------------------------------------------------------------------- #
# BENCH_results.json: machine-readable results, merged across sessions
# --------------------------------------------------------------------- #
#: Collected stats for this session: {suite: {bench name: {stat: value}}}.
_BENCH_RESULTS: dict[str, dict[str, dict[str, float]]] = {}

BENCH_RESULTS_SCHEMA = 2


def _results_path() -> Path:
    default = Path(_BENCH_DIR).parent / "BENCH_results.json"
    return Path(os.environ.get("REPRO_BENCH_RESULTS", default))


def _suite_name(module_name: str) -> str:
    return module_name.rpartition(".")[2].removeprefix("test_")


@pytest.fixture
def bench_results(request):
    """Recorder for custom (non-pytest-benchmark) stats.

    ``bench_results(name, runs_per_s=..., seconds=...)`` files the stats
    under this module's suite section of ``BENCH_results.json``.
    """
    suite = _suite_name(request.module.__name__)

    def record(name: str, **stats: float) -> None:
        _BENCH_RESULTS.setdefault(suite, {})[name] = dict(stats)

    return record


@pytest.fixture(autouse=True)
def _collect_benchmark_stats(request):
    """Harvest pytest-benchmark stats from every bench that used the fixture."""
    yield
    fixture = request.node.funcargs.get("benchmark")
    stats = getattr(getattr(fixture, "stats", None), "stats", None)
    mean = getattr(stats, "mean", None)
    if not mean:  # benchmark fixture unused, disabled, or zero-time
        return
    suite = _suite_name(request.module.__name__)
    _BENCH_RESULTS.setdefault(suite, {})[request.node.name] = {
        "mean_s": mean,
        "stddev_s": getattr(stats, "stddev", 0.0),
        "min_s": getattr(stats, "min", mean),
        "rounds": getattr(stats, "rounds", len(getattr(stats, "data", []))),
        "throughput_ops_per_s": 1.0 / mean,
    }


def _load_existing_suites(path: Path) -> dict[str, dict[str, dict[str, float]]]:
    """Previously written suite sections (tolerating the schema-1 layout)."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return {}
    except (OSError, ValueError) as error:
        import warnings

        warnings.warn(
            f"existing {path} is unreadable ({error}); its previous bench "
            f"history will be replaced by this session's results",
            RuntimeWarning,
            stacklevel=2,
        )
        return {}
    suites: dict[str, dict[str, dict[str, float]]] = {}
    if data.get("schema") == 1 and data.get("suite"):
        entries = data.get("benchmarks", [])
        suites[str(data["suite"])] = {
            str(entry["name"]): {k: v for k, v in entry.items() if k != "name"}
            for entry in entries
            if isinstance(entry, dict) and "name" in entry
        }
    elif isinstance(data.get("suites"), dict):
        for suite, entries in data["suites"].items():
            suites[str(suite)] = {
                str(entry["name"]): {k: v for k, v in entry.items() if k != "name"}
                for entry in entries
                if isinstance(entry, dict) and "name" in entry
            }
    return suites


def _prune_stale_suites(
    suites: dict[str, dict[str, dict[str, float]]],
) -> dict[str, dict[str, dict[str, float]]]:
    """Drop tracked results whose benchmark no longer exists.

    Merge-on-write preserves history across partial sessions, which also
    means a deleted or renamed bench would otherwise haunt the file forever.
    A suite is dropped when its ``test_<suite>.py`` module is gone; within a
    live module, ``test_``-prefixed entries (pytest-benchmark node names) are
    dropped when the function no longer appears in the module source.
    Custom-named meters (e.g. ``campaign_serial``) are chosen at runtime, so
    they live and die with their module only.
    """
    pruned: dict[str, dict[str, dict[str, float]]] = {}
    for suite, benches in suites.items():
        module_path = Path(_BENCH_DIR) / f"test_{suite}.py"
        if not module_path.is_file():
            continue
        try:
            source = module_path.read_text(encoding="utf-8")
        except OSError:
            pruned[suite] = dict(benches)
            continue
        kept = {
            name: stats
            for name, stats in benches.items()
            if not name.startswith("test_")
            or f"def {name.partition('[')[0]}(" in source
        }
        if kept:
            pruned[suite] = kept
    return pruned


def pytest_sessionfinish(session, exitstatus):
    """Merge this session's collected stats into BENCH_results.json."""
    if not _BENCH_RESULTS:
        return
    path = _results_path()
    suites = _prune_stale_suites(_load_existing_suites(path))
    # Merge per bench, not per suite: running a subset of a module (-k)
    # must refresh only the benches that actually ran, never discard the
    # rest of that module's tracked results.
    for suite, benches in _BENCH_RESULTS.items():
        suites.setdefault(suite, {}).update(benches)
    payload = {
        "schema": BENCH_RESULTS_SCHEMA,
        "suites": {
            suite: [
                {"name": name, **{k: v for k, v in sorted(stats.items())}}
                for name, stats in sorted(suites[suite].items())
            ]
            for suite in sorted(suites)
        },
    }
    # Write-temp-then-replace: a session killed mid-write must not truncate
    # the accumulated bench history.
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    os.replace(tmp, path)


def pytest_collection_modifyitems(items):
    """Every benchmark runs a campaign: mark them all slow for -m filtering.

    This hook receives the *whole* session's items (conftest hooks are not
    directory-scoped), so restrict the marker to items collected from this
    directory — otherwise ``-m "not slow"`` deselects the entire test suite.
    """
    for item in items:
        if str(item.fspath).startswith(_BENCH_DIR + os.sep):
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def sil_campaign_results():
    """RQ1: the SIL campaign over MLS-V1/V2/V3."""
    return run_campaign(campaign_config=CampaignConfig())


@pytest.fixture(scope="session")
def hil_campaign_result():
    """RQ2: the HIL campaign (MLS-V3 on the Jetson Nano model)."""
    return run_hil_campaign(campaign_config=CampaignConfig())


@pytest.fixture(scope="session")
def field_campaign_result():
    """RQ3: the real-world (field) campaign."""
    config = CampaignConfig()
    config.scenario_count = max(4, config.scenario_count // 2)
    return run_field_campaign(campaign_config=config)
