"""Fig. 5 / Fig. 6: the qualitative failure modes reported in §V.

Each bench reproduces one of the paper's observed issues mechanistically:
(a) the bounded local A* failing (and falling back to a straight line) at a
large building, (b) sharp RRT* corners that the trajectory follower cuts,
(c) erroneous point clouds under state-estimation error, and (d) GPS drift in
poor weather while DOP stays in band.
"""

import math

from repro.geometry import Pose, Vec3
from repro.mapping.inflation import InflatedMap, InflationConfig
from repro.mapping.octomap import OcTree
from repro.mapping.voxel_grid import VoxelGrid, VoxelGridConfig
from repro.planning.ego_planner import EgoLocalPlanner, EgoPlannerConfig
from repro.planning.rrt_star import RrtStarConfig, RrtStarPlanner
from repro.planning.trajectory import Trajectory
from repro.planning.types import PlanningProblem
from repro.realworld.gps_drift import characterise_gps_drift
from repro.realworld.sensor_faults import characterise_point_cloud_faults
from repro.sensors.depth import PointCloud
from repro.world.map_generator import generate_map, MapStyle
from repro.world.weather import Weather, WeatherCondition


def _building_wall_points(width=20, height=24):
    return [
        Vec3(10, y * 0.5, z * 0.5)
        for y in range(-width, width + 1)
        for z in range(2, height * 2)
    ]


def test_fig5a_local_planner_fails_at_large_building(benchmark):
    """MLS-V2 failure: the bounded A* pool cannot route around a big building."""
    grid = VoxelGrid(VoxelGridConfig(window_size=30.0, resolution=1.0))
    grid.integrate_cloud(PointCloud(points=_building_wall_points(), sensor_position=Vec3.zero()))
    planner = EgoLocalPlanner(grid, EgoPlannerConfig(max_expansions=250))
    problem = PlanningProblem(start=Vec3(0, 0, 6), goal=Vec3(20, 0, 6), min_altitude=2, max_altitude=9)

    result = benchmark(planner.plan, problem)
    print(
        f"\nFig 5a: local A* fallback used: {planner.last_fallback_used}, "
        f"waypoints: {len(result.waypoints)} (straight line through the building)"
    )
    assert planner.last_fallback_used
    # The fallback path goes straight through the obstacle — the unsafe
    # behaviour observed in the paper.
    assert not planner.path_is_safe(result.waypoints)


def test_fig5b_rrt_star_paths_have_sharp_corners(benchmark):
    """MLS-V3 failure ingredient: sampled paths contain sharp corners."""
    tree = OcTree()
    for point in _building_wall_points(width=12, height=16):
        for _ in range(2):
            tree.update_voxel(point, hit=True)
    inflated = InflatedMap(tree, InflationConfig())
    planner = RrtStarPlanner(inflated, RrtStarConfig(seed=5, max_iterations=800))
    problem = PlanningProblem(start=Vec3(0, 0, 5), goal=Vec3(20, 0, 5), time_budget=4.0, max_altitude=25)

    result = benchmark(planner.plan, problem)
    corner = Trajectory(result.waypoints).max_corner_angle() if result.succeeded else float("nan")
    print(f"\nFig 5b: RRT* path corners up to {math.degrees(corner):.0f} degrees over {len(result.waypoints)} waypoints")
    assert result.succeeded
    assert corner > math.radians(15)


def test_fig5c_erroneous_pointclouds_under_drift(benchmark):
    """Real-world failure: GPS drift displaces the mapped geometry."""
    world = generate_map(MapStyle.SUBURBAN, seed=4)
    world.weather = Weather.preset(WeatherCondition.RAIN, 0.9)
    drift = Vec3(2.0, -1.0, 1.2)
    report = benchmark(
        characterise_point_cloud_faults,
        world,
        Pose.at(Vec3(0, 0, 6)),
        drift,
        5,
    )
    clean = characterise_point_cloud_faults(world, Pose.at(Vec3(0, 0, 6)), Vec3.zero(), captures=5)
    print(
        f"\nFig 5c: {report.displaced_points}/{report.total_points} points displaced "
        f"(mean {report.mean_displacement:.2f} m) under {drift.norm():.1f} m estimation error "
        f"vs {clean.displaced_points}/{clean.total_points} with a healthy estimate"
    )
    assert report.displaced_fraction > clean.displaced_fraction
    assert report.mean_displacement > clean.mean_displacement


def test_fig5d_gps_drift_with_healthy_dop(benchmark):
    """Real-world failure: metres of GPS drift while HDOP/VDOP stay in 2-8."""
    storm = Weather.preset(WeatherCondition.STORM, 1.0)
    report = benchmark(characterise_gps_drift, storm, 90.0, 5.0, Vec3.zero(), 3)
    print(f"\nFig 5d: {report}")
    clear_report = characterise_gps_drift(Weather.clear(), duration=90.0, seed=3)
    assert report.mean_error > clear_report.mean_error
    assert report.all_dop_in_band
