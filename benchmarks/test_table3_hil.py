"""Table III + §V.B: HIL campaign (MLS-V3 on the Jetson Nano model)."""

from repro.bench import paper_values
from repro.bench.tables import render_landing_table, render_resource_summary


def test_table3_hil_landing_outcomes(benchmark, hil_campaign_result, sil_campaign_results):
    """Regenerate Table III and check HIL success <= SIL success for MLS-V3."""
    table = benchmark(
        render_landing_table,
        {"MLS-V3": hil_campaign_result},
        paper_values.TABLE_3_HIL,
        "Table III: Experiment Results of HIL testing",
    )
    print("\n" + table)
    assert hil_campaign_result.success_rate <= sil_campaign_results["MLS-V3"].success_rate + 1e-9


def test_hil_resource_utilisation(benchmark, hil_campaign_result):
    """§V.B: memory ~2.2 GB of 2.9 GB, CPU cores heavily utilised.

    "Heavily utilised" shows up in the model as saturated *planning* ticks
    (peak utilisation) and missed deadlines, not in the whole-mission mean:
    most decision ticks only run detection + mapping, so the mean dilutes
    across long non-planning stretches.
    """
    summary = benchmark(render_resource_summary, hil_campaign_result)
    print("\n" + summary)
    stats = hil_campaign_result.resource_stats
    assert stats.mean_memory_mb > 1800.0
    assert stats.mean_memory_mb < 2900.0
    assert stats.peak_cpu > 0.5  # planning ticks saturate the cores
    assert stats.deadline_misses > 0  # §V.B: the Nano misses decision deadlines
    assert stats.mean_cpu > 0.1
