"""Ablation (§III.C): bounded local A* vs RRT* as obstacle size grows."""

from repro.geometry import Vec3
from repro.mapping.inflation import InflatedMap, InflationConfig
from repro.mapping.octomap import OcTree
from repro.mapping.voxel_grid import VoxelGrid, VoxelGridConfig
from repro.planning.ego_planner import EgoLocalPlanner, EgoPlannerConfig
from repro.planning.rrt_star import RrtStarConfig, RrtStarPlanner
from repro.planning.types import PlanningProblem
from repro.sensors.depth import PointCloud


def wall_points(half_width, height):
    return [
        Vec3(10, 0.5 * y, 0.5 * z)
        for y in range(-2 * half_width, 2 * half_width + 1)
        for z in range(2, 2 * height)
    ]


def run_pair(half_width, height):
    points = wall_points(half_width, height)
    # The altitude band reflects the mission's cruise envelope: the local
    # planner cannot simply climb over a building taller than the band.
    max_altitude = 40 if height <= 6 else 10
    problem = PlanningProblem(
        start=Vec3(0, 0, 6), goal=Vec3(20, 0, 6), time_budget=3.0, max_altitude=max_altitude
    )

    grid = VoxelGrid(VoxelGridConfig(window_size=30.0, resolution=1.0))
    grid.integrate_cloud(PointCloud(points=points, sensor_position=Vec3.zero()))
    ego = EgoLocalPlanner(grid, EgoPlannerConfig(max_expansions=250))
    ego_result = ego.plan(problem)
    ego_safe = ego_result.succeeded and ego.path_is_safe(ego_result.waypoints)

    tree = OcTree()
    for point in points:
        for _ in range(2):
            tree.update_voxel(point, hit=True)
    inflated = InflatedMap(tree, InflationConfig())
    rrt = RrtStarPlanner(inflated, RrtStarConfig(seed=3, max_iterations=1200, sample_margin=14.0))
    rrt_result = rrt.plan(problem)
    rrt_safe = rrt_result.succeeded and not inflated.path_colliding(rrt_result.waypoints)
    return ego_safe, rrt_safe


def test_ablation_planner_success_vs_obstacle_size(benchmark):
    """RRT* keeps finding safe paths as the obstacle grows; the bounded local A* stops."""
    small = run_pair(half_width=3, height=5)
    large = benchmark(run_pair, 12, 14)
    print(
        "\nPlanning ablation (safe path found):"
        f"\n  small obstacle : local A* {small[0]}, RRT* {small[1]}"
        f"\n  large building : local A* {large[0]}, RRT* {large[1]}"
    )
    assert small[1] and large[1]          # RRT* handles both
    assert not large[0]                   # the bounded local planner fails on the large one
