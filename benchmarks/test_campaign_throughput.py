"""Campaign throughput: serial vs parallel vs dispatched execution.

Times the same fixed-seed smoke campaign through the three execution paths
— in-process serial, 2-process ``.parallel()``, and a 2-worker sharded
dispatch (``repro.dispatch``) — and records runs/sec for each into
``BENCH_results.json`` alongside the microbench metrics, so the overhead of
the work-queue machinery (and any future scheduling regressions) shows up
in the perf trajectory.

The three paths must also agree on the outcomes: identical per-system
record dicts are asserted, not just identical counts.
"""

import time

from repro.bench.campaign import Campaign
from repro.core.config import mls_v1
from repro.geometry import Pose, Quaternion, Vec3
from repro.sensors.camera import DownwardCamera
from repro.world.scenario_gen import generate_suite

#: Fixed-seed campaign shared by the three execution paths.
SUITE_PRESET = "smoke"
SUITE_COUNT = 2
SUITE_SEED = 7


def _campaign():
    return (
        Campaign(mls_v1())
        .suite(generate_suite(SUITE_PRESET, count=SUITE_COUNT, seed=SUITE_SEED))
        .repetitions(1)
    )


def _timed(run):
    start = time.perf_counter()
    results = run()
    elapsed = time.perf_counter() - start
    return results, elapsed


def _record_dicts(result):
    """Record dicts minus ``scenario_fingerprint``, which only persisted
    (``.out()`` / dispatched) campaigns stamp."""
    dicts = [record.to_dict() for record in result.records]
    for data in dicts:
        data.pop("scenario_fingerprint", None)
    return dicts


def test_campaign_throughput_serial_parallel_dispatched(bench_results, tmp_path):
    serial, serial_s = _timed(lambda: _campaign().run())
    parallel, parallel_s = _timed(lambda: _campaign().parallel(2).run())
    dispatched, dispatched_s = _timed(
        lambda: _campaign().dispatch(tmp_path / "dispatch", shards=2, workers=2)
    )

    runs = sum(len(result) for result in serial.values())
    assert runs == SUITE_COUNT
    for label, results in (("parallel", parallel), ("dispatched", dispatched)):
        for name, reference in serial.items():
            assert _record_dicts(results[name]) == _record_dicts(reference), (
                f"{label} outcomes diverge from serial for {name}"
            )

    for name, elapsed in (
        ("campaign_serial", serial_s),
        ("campaign_parallel_2workers", parallel_s),
        ("campaign_dispatched_2workers", dispatched_s),
    ):
        bench_results(
            name,
            runs=float(runs),
            seconds=elapsed,
            runs_per_s=runs / elapsed,
        )


def test_traced_campaign_overhead_under_5_percent(bench_results, tmp_path):
    """Flight-recorder tracing must stay within 5% of an untraced campaign.

    Tracing sits on the same per-tick hot path as the fault-harness hooks,
    so it gets the same bound PR 5 put on a no-op harness: best-of timing
    (robust on shared runners), identical record dicts asserted, and the
    traced throughput recorded for the perfgate trajectory.
    """
    rounds = 3
    baseline_results, baseline_s = None, float("inf")
    traced_results, traced_s = None, float("inf")
    for round_index in range(rounds):
        baseline_results, elapsed = _timed(lambda: _campaign().run())
        baseline_s = min(baseline_s, elapsed)
        trace_dir = tmp_path / f"trace-{round_index}"
        traced_results, elapsed = _timed(
            lambda: _campaign().trace(trace_dir).run()
        )
        traced_s = min(traced_s, elapsed)

    for name, reference in baseline_results.items():
        assert _record_dicts(traced_results[name]) == _record_dicts(reference), (
            f"tracing changed campaign outcomes for {name}"
        )
    trace_file = tmp_path / "trace-0" / "MLS-V1.trace.jsonl"
    assert trace_file.exists()
    assert len(trace_file.read_text().splitlines()) == 1 + SUITE_COUNT

    runs = sum(len(result) for result in traced_results.values())
    overhead = traced_s / baseline_s - 1.0
    bench_results(
        "campaign_traced",
        runs=float(runs),
        seconds=traced_s,
        runs_per_s=runs / traced_s,
        overhead_fraction=overhead,
    )
    assert overhead < 0.05, (
        f"flight-recorder tracing costs {100.0 * overhead:.1f}% over an untraced "
        f"campaign ({traced_s:.2f}s vs {baseline_s:.2f}s); tracing must stay "
        f"under 5%"
    )


def test_batched_projection_rate(bench_results):
    """Pixel -> ground projection rate of the vectorized camera front end.

    Renders full frames from a sweep of tilted poses and reports ground-plane
    projections per second (pixels per frame times frames), the classic
    figure of merit for camera-to-ground mapping loops.  Tracked so a
    regression in the batched projection/render path shows up even when the
    campaign meter is dominated by non-camera work.
    """
    from repro.world.scenario import Scenario  # local: heavy world imports
    from repro.world.map_generator import MapStyle

    scenario = generate_suite(SUITE_PRESET, count=1, seed=SUITE_SEED).scenarios[0]
    assert isinstance(scenario, Scenario) and isinstance(scenario.map_style, MapStyle)
    world = scenario.build_world()
    camera = DownwardCamera(seed=3)
    intr = camera.intrinsics
    frames = 60
    poses = [
        Pose(
            position=Vec3(2.0 * i - frames, 1.5 * i % 30.0, 12.0 + (i % 5)),
            orientation=Quaternion.from_euler(0.02 * (i % 7), 0.015 * (i % 5), 0.1 * i),
        )
        for i in range(frames)
    ]
    start = time.perf_counter()
    for pose in poses:
        camera.capture(world, pose, timestamp=0.04 * len(poses))
    elapsed = time.perf_counter() - start

    projections = frames * intr.width * intr.height
    bench_results(
        "projection_batch",
        frames=float(frames),
        seconds=elapsed,
        projections_per_s=projections / elapsed,
    )
