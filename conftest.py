"""Ensure the in-repo package is importable when running pytest from the root.

The evaluation environment has no network access, so ``pip install -e .`` can
fail when the ``wheel`` package is unavailable (PEP 517 editable installs need
it).  Adding ``src/`` to ``sys.path`` here makes the test and benchmark suites
runnable regardless of how (or whether) the package was installed.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_configure(config):
    # Registered here (in addition to pyproject.toml) so the marker exists
    # even when pytest runs with an explicit -c pointing elsewhere.
    config.addinivalue_line(
        "markers",
        "slow: heavy campaign/bench tests; deselect with -m 'not slow' for the fast tier-1 subset",
    )
